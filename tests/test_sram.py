"""Set-associative cache with LRU."""

import pytest

from repro.cache.sram import SetAssociativeCache
from repro.common.config import CacheGeometry


def small_cache(ways=2, sets=4, line=64):
    return SetAssociativeCache(
        CacheGeometry(size_bytes=ways * sets * line, ways=ways, line_bytes=line)
    )


def test_cold_miss_then_hit():
    cache = small_cache()
    assert not cache.access(0)
    assert cache.access(0)
    assert cache.hits == 1 and cache.misses == 1


def test_same_line_different_bytes_hit():
    cache = small_cache()
    cache.access(0)
    assert cache.access(63)
    assert not cache.access(64)


def test_lru_eviction_order():
    cache = small_cache(ways=2, sets=1, line=64)
    cache.access(0)      # A
    cache.access(64)     # B
    cache.access(0)      # A again -> B is LRU
    cache.access(128)    # C evicts B
    assert cache.access(0)
    assert not cache.access(64)


def test_set_isolation():
    cache = small_cache(ways=1, sets=4)
    cache.access(0)            # set 0
    cache.access(64)           # set 1
    assert cache.access(0)
    assert cache.access(64)


def test_probe_does_not_mutate():
    cache = small_cache()
    cache.access(0)
    assert cache.probe(0)
    assert not cache.probe(64)
    assert cache.misses == 1  # probe added nothing


def test_fill_and_eviction_report():
    cache = small_cache(ways=1, sets=1)
    assert cache.fill(0) is None
    victim = cache.fill(64)
    assert victim == 0
    assert cache.fill(64) is None  # already resident


def test_invalidate():
    cache = small_cache()
    cache.access(0)
    assert cache.invalidate(0)
    assert not cache.invalidate(0)
    assert not cache.access(0)  # miss again


def test_capacity_invariant():
    cache = small_cache(ways=2, sets=4)
    for i in range(100):
        cache.access(i * 64)
    assert cache.resident_lines() <= 8


def test_miss_rate():
    cache = small_cache()
    assert cache.miss_rate == 0.0
    cache.access(0)
    cache.access(0)
    assert cache.miss_rate == pytest.approx(0.5)


def test_working_set_within_capacity_has_no_capacity_misses():
    cache = small_cache(ways=2, sets=4, line=64)  # 512 B
    addresses = [i * 64 for i in range(8)]
    for a in addresses:
        cache.access(a)
    for _ in range(3):
        for a in addresses:
            assert cache.access(a)
