"""Multiprogrammed shared-cache pressure (the Hsu et al. citation)."""

import pytest

from repro.common.config import ChipModel
from repro.experiments.shared_cache import shared_cache_pressure


@pytest.fixture(scope="module")
def results():
    return shared_cache_pressure(instructions_per_thread=15_000)


def test_thread_counts_present(results):
    for rows in results.values():
        assert [r.num_threads for r in rows] == [1, 2, 3, 4]


def test_miss_rate_grows_with_threads(results):
    """More co-runners -> more capacity pressure on the small cache."""
    small = results[ChipModel.TWO_D_A.value]
    assert small[-1].miss_rate > small[0].miss_rate


def test_big_cache_absorbs_pressure_better(results):
    """At full load the 15 MB cache misses less than the 6 MB one, and by
    a larger margin than single-threaded (the paper's multicore point)."""
    small = results[ChipModel.TWO_D_A.value]
    big = results[ChipModel.TWO_D_2A.value]
    assert big[-1].miss_rate < small[-1].miss_rate
    gap_loaded = small[-1].miss_rate - big[-1].miss_rate
    gap_single = small[0].miss_rate - big[0].miss_rate
    assert gap_loaded > gap_single


def test_access_counts_scale_with_threads(results):
    rows = results[ChipModel.TWO_D_A.value]
    assert rows[1].accesses > rows[0].accesses * 1.5
