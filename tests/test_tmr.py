"""Triple modular redundancy (the Section 4 alternative)."""

import pytest

from repro.core.faults import Fault, FaultInjector, FaultKind, FaultRates, FaultSite
from repro.core.functional import FunctionalRmt
from repro.core.tmr import TmrSystem
from repro.isa.trace import generate_trace
from repro.workloads.profiles import get_profile


@pytest.fixture(scope="module")
def trace():
    return generate_trace(get_profile("gzip"), 6000, seed=23)


@pytest.fixture(scope="module")
def golden(trace):
    return FunctionalRmt().run(trace).store_stream


class TestFaultFree:
    def test_all_votes_unanimous(self, trace):
        result = TmrSystem().run(trace)
        assert result.votes_unanimous == len(trace)
        assert result.votes_majority == 0
        assert result.votes_split == 0

    def test_store_stream_matches_rmt(self, trace, golden):
        assert TmrSystem().run(trace).store_stream == golden


class _SingleReplicaFault:
    """Corrupts replica 0's result at one instruction."""

    def __init__(self, seq):
        self.seq = seq

    def faults_for(self, seq, core):
        if seq == self.seq and core == "leading":
            return [Fault(seq, FaultKind.SOFT_ERROR, FaultSite.LEADING_RESULT, (11,))]
        return []


class TestVoting:
    def test_single_replica_error_is_outvoted(self, trace, golden):
        target = next(i.seq for i in trace if i.writes_register and i.seq > 50)
        result = TmrSystem(injector=_SingleReplicaFault(target)).run(trace)
        assert result.votes_majority == 1
        assert result.votes_split == 0
        assert result.store_stream == golden

    def test_campaign_masks_all_single_errors(self, trace, golden):
        injector = FaultInjector(
            leading=FaultRates(soft_error=2e-3), seed=31
        )
        result = TmrSystem(injector=injector).run(trace)
        assert result.masked_errors > 0
        assert result.store_stream == golden

    def test_heavy_correlated_faults_can_split_votes(self, trace):
        # Hammer two replicas simultaneously hard enough that votes split.
        injector = FaultInjector(
            leading=FaultRates(soft_error=0.05),
            trailing=FaultRates(soft_error=0.05),
            seed=3,
        )
        result = TmrSystem(injector=injector).run(trace)
        assert result.votes_split + result.votes_majority > 0

    def test_result_counts_sum(self, trace):
        injector = FaultInjector(leading=FaultRates(soft_error=1e-3), seed=5)
        result = TmrSystem(injector=injector).run(trace)
        assert (
            result.votes_unanimous + result.votes_majority + result.votes_split
            == len(trace)
        )

    def test_corrupted_replica_heals(self, trace):
        """After an outvoted error, the losing replica's regfile is fixed
        by the voted write, so the error does not cascade."""
        target = next(i.seq for i in trace if i.writes_register and i.seq > 50)
        system = TmrSystem(injector=_SingleReplicaFault(target))
        system.run(trace)
        assert system.regfiles[0] == system.regfiles[1] == system.regfiles[2]
