"""The parallel experiment engine: worker policy, ordering, determinism."""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.experiments import engine
from repro.experiments.engine import (
    JOBS_ENV_VAR,
    SweepTiming,
    parallel_map,
    resolve_jobs,
    run_sweep,
)
from repro.experiments.perf import fig6_performance
from repro.experiments.runner import SimulationWindow
from repro.workloads.profiles import get_profile

TINY = SimulationWindow(warmup=2000, measured=6000)


def _square(x: int) -> int:
    # Module-level so it pickles into pool workers.
    return x * x


@pytest.fixture(autouse=True)
def _clean_timings():
    engine.clear_timings()
    yield
    engine.clear_timings()


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(3) == 3

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs() == 5

    def test_default_is_at_least_one(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() >= 1

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "lots")
        with pytest.raises(ConfigError):
            resolve_jobs()

    def test_nonpositive_rejected(self, monkeypatch):
        with pytest.raises(ConfigError):
            resolve_jobs(0)
        monkeypatch.setenv(JOBS_ENV_VAR, "-2")
        with pytest.raises(ConfigError):
            resolve_jobs()


class TestRunSweep:
    def test_serial_preserves_order(self):
        results, timing = run_sweep(_square, range(20), jobs=1)
        assert results == [x * x for x in range(20)]
        assert timing.jobs == 1

    def test_parallel_preserves_order(self):
        results = parallel_map(_square, range(20), jobs=2, chunksize=3)
        assert results == [x * x for x in range(20)]

    def test_env_var_serial_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "1")
        _results, timing = run_sweep(_square, range(4))
        assert timing.jobs == 1

    def test_jobs_capped_by_task_count(self):
        _results, timing = run_sweep(_square, [1, 2], jobs=16)
        assert timing.jobs == 2

    def test_empty_sweep(self):
        results, timing = run_sweep(_square, [], jobs=4)
        assert results == []
        assert timing.tasks == 0
        assert timing.empty
        # Zero-task sweeps are not recorded, so reports never show them.
        assert engine.timings() == []

    def test_timing_recorded(self):
        parallel_map(_square, range(6), jobs=1, label="squares")
        recorded = engine.timings()
        assert [t.label for t in recorded] == ["squares"]
        assert recorded[0].tasks == 6
        assert recorded[0].wall_s > 0
        assert recorded[0].cpu_s > 0
        summary = engine.timing_summary()
        assert summary[0]["label"] == "squares"
        assert "squares" in engine.format_timing_summary()

    def test_record_opt_out(self):
        run_sweep(_square, range(3), jobs=1, record=False)
        assert engine.timings() == []

    def test_speedup_property(self):
        timing = SweepTiming(
            label="x", jobs=2, task_wall_s=[1.0, 1.0], wall_s=1.0
        )
        assert timing.speedup == pytest.approx(2.0)
        # A degenerate (sub-resolution) wall clock must not report the
        # misleading 1.0 of old: the division is epsilon-guarded and the
        # summary renders such sweeps as "—".
        degenerate = dataclasses.replace(timing, wall_s=0.0)
        assert degenerate.speedup > 1e6
        empty = SweepTiming(label="x", jobs=1)
        assert empty.speedup == 0.0

    def test_degenerate_sweep_renders_dash(self):
        engine._TIMINGS.append(SweepTiming(
            label="degenerate", jobs=1, task_wall_s=[0.5], wall_s=0.0
        ))
        lines = engine.format_timing_summary().splitlines()
        assert any("degenerate" in line and "—" in line for line in lines)


class TestDeterminism:
    """The acceptance criterion: parallel sweeps are bit-identical to serial."""

    def test_fig6_parallel_matches_serial(self):
        benchmarks = [get_profile(n) for n in ("gzip", "mcf", "mesa")]
        serial = fig6_performance(window=TINY, benchmarks=benchmarks, jobs=1)
        parallel = fig6_performance(window=TINY, benchmarks=benchmarks, jobs=2)
        assert [dataclasses.asdict(r) for r in serial] == [
            dataclasses.asdict(r) for r in parallel
        ]
