"""Rect geometry used by floorplans and rasterization."""

import pytest

from repro.common.geometry import Rect


def test_basic_properties():
    r = Rect(1.0, 2.0, 3.0, 4.0)
    assert r.x2 == pytest.approx(4.0)
    assert r.y2 == pytest.approx(6.0)
    assert r.area == pytest.approx(12.0)
    assert r.center == (pytest.approx(2.5), pytest.approx(4.0))


def test_negative_dimensions_rejected():
    with pytest.raises(ValueError):
        Rect(0, 0, -1, 1)
    with pytest.raises(ValueError):
        Rect(0, 0, 1, -1)


def test_overlap_detection():
    a = Rect(0, 0, 2, 2)
    assert a.overlaps(Rect(1, 1, 2, 2))
    assert not a.overlaps(Rect(2, 0, 1, 1))  # edge-sharing is not overlap
    assert not a.overlaps(Rect(5, 5, 1, 1))


def test_intersection_area():
    a = Rect(0, 0, 2, 2)
    assert a.intersection_area(Rect(1, 1, 2, 2)) == pytest.approx(1.0)
    assert a.intersection_area(Rect(3, 3, 1, 1)) == 0.0
    assert a.intersection_area(a) == pytest.approx(a.area)


def test_contains():
    outer = Rect(0, 0, 10, 10)
    assert outer.contains(Rect(1, 1, 2, 2))
    assert outer.contains(outer)
    assert not outer.contains(Rect(9, 9, 2, 2))


def test_manhattan_distance():
    a = Rect(0, 0, 2, 2)    # centre (1, 1)
    b = Rect(3, 4, 2, 2)    # centre (4, 5)
    assert a.manhattan_distance_to(b) == pytest.approx(7.0)
    assert a.manhattan_distance_to(a) == 0.0


def test_translated():
    r = Rect(1, 1, 2, 2).translated(3, -1)
    assert (r.x, r.y, r.width, r.height) == (4, 0, 2, 2)


def test_rect_is_hashable_and_frozen():
    r = Rect(0, 0, 1, 1)
    assert hash(r) == hash(Rect(0, 0, 1, 1))
    with pytest.raises(Exception):
        r.x = 5.0
