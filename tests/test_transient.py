"""The transient thermal solver."""

import numpy as np
import pytest

from repro.common.errors import ThermalModelError
from repro.thermal.grid import GridThermalModel
from repro.thermal.materials import Layer
from repro.thermal.transient import TransientThermalModel

_ROWS = _COLS = 8


@pytest.fixture(scope="module")
def grid():
    layers = [
        Layer("cu_base", 1e-3, 1.0 / 400.0),
        Layer("bulk_si", 200e-6, 0.01),
        Layer("active", 1e-6, 0.01, has_power=True),
    ]
    return GridThermalModel(
        layers=layers, width_m=4e-3, height_m=4e-3, rows=_ROWS, cols=_COLS,
        sink_r_k_mm2_per_w=10.0, secondary_r_k_mm2_per_w=1e5, ambient_c=47.0,
    )


@pytest.fixture(scope="module")
def power():
    p = np.zeros((_ROWS, _COLS))
    p[3:5, 3:5] = 1.0   # 4 W hotspot
    return p


def test_initial_state_is_ambient(grid):
    model = TransientThermalModel(grid)
    assert np.allclose(model.initial_state(), 47.0)


def test_invalid_timestep(grid):
    with pytest.raises(ThermalModelError):
        TransientThermalModel(grid, timestep_s=0.0)


def test_heating_is_monotone_from_ambient(grid, power):
    model = TransientThermalModel(grid, timestep_s=1e-4)
    _, peaks = model.run({"active": power}, duration_s=3e-3)
    assert all(b >= a - 1e-9 for a, b in zip(peaks, peaks[1:]))
    assert peaks[0] > 47.0


def test_converges_to_steady_state(grid, power):
    model = TransientThermalModel(grid, timestep_s=2e-3)
    state, _ = model.run({"active": power}, duration_s=3.0)
    steady = grid.solve({"active": power})["active"]
    transient_active = state[-_ROWS * _COLS :].reshape(_ROWS, _COLS)
    assert np.allclose(transient_active, steady, atol=0.05)


def test_cooling_decays_back_to_ambient(grid, power):
    model = TransientThermalModel(grid, timestep_s=2e-3)
    hot, _ = model.run({"active": power}, duration_s=1.0)
    cooled, peaks = model.run(
        {"active": np.zeros((_ROWS, _COLS))}, duration_s=3.0, state=hot
    )
    assert peaks[-1] < peaks[0]
    assert np.allclose(cooled, 47.0, atol=0.1)


def test_step_power_faster_with_small_capacity(grid, power):
    """Thermal time constants: one step moves a fraction toward steady."""
    model = TransientThermalModel(grid, timestep_s=1e-4)
    state = model.step(model.initial_state(), {"active": power})
    steady = grid.solve({"active": power})["active"].max()
    assert 47.0 < state.max() < steady


def test_peak_of_layer(grid, power):
    model = TransientThermalModel(grid, timestep_s=1e-3)
    state, _ = model.run({"active": power}, duration_s=0.05)
    assert model.peak_of(state, "active") >= model.peak_of(state, "cu_base")


def test_wrong_layer_rejected(grid):
    model = TransientThermalModel(grid)
    with pytest.raises(ThermalModelError):
        model.step(model.initial_state(), {"cu_base": np.ones((_ROWS, _COLS))})
