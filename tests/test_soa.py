"""The columnar trace pipeline: SoA round-trips, vectorized kernels vs
their per-instruction references, and end-to-end golden IPC values.

The contract under test is *bit-identity*: the structure-of-arrays fast
paths must reproduce the object paths' RNG draw order and float results
exactly, so every assertion here is ``==``, never ``approx``.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import memo
from repro.common.config import (
    CheckerCoreConfig,
    ChipModel,
    LeadingCoreConfig,
    NucaPolicy,
)
from repro.core.leading import LeadingCoreTiming
from repro.core.rmt import RmtSimulator
from repro.experiments.perf import fig6_performance
from repro.experiments.runner import SimulationWindow, build_memory
from repro.isa.soa import TraceArrays, TraceBatch
from repro.isa.trace import TraceGenerator, generate_arrays_batch
from repro.workloads.profiles import get_profile


@pytest.fixture(autouse=True)
def _fresh_cache():
    memo.clear_cache()
    yield
    memo.clear_cache()


# ---------------------------------------------------------------------
class TestRoundTrip:
    @given(
        name=st.sampled_from(["gzip", "mcf", "swim", "art"]),
        seed=st.integers(0, 2**16),
        n=st.integers(1, 160),
    )
    @settings(max_examples=20, deadline=None)
    def test_objects_and_arrays_are_interconvertible(self, name, seed, n):
        profile = get_profile(name)
        objects = TraceGenerator(profile, seed=seed).generate(n)
        arrays = TraceGenerator(profile, seed=seed).generate_arrays(n)
        assert TraceArrays.from_instructions(objects) == arrays
        assert arrays.to_instructions() == objects

    def test_slices_are_views_with_correct_sequence(self):
        arrays = TraceGenerator(get_profile("gzip"), seed=3).generate_arrays(64)
        window = arrays[10:20]
        assert len(window) == 10
        assert window.to_instructions() == arrays.to_instructions()[10:20]

    def test_concat_matches_single_generation(self):
        gen = TraceGenerator(get_profile("mcf"), seed=9)
        parts = [gen.generate_arrays(n) for n in (7, 50, 13)]
        whole = TraceGenerator(get_profile("mcf"), seed=9).generate_arrays(70)
        assert TraceArrays.concat(parts) == whole


class TestVectorizedGeneration:
    @pytest.mark.parametrize("name", ["gzip", "mcf", "swim", "art"])
    def test_chunks_match_reference_with_state_carry(self, name):
        # Sequential chunks of awkward sizes: the carried ring/pc/pointer
        # state must hand off exactly as the per-instruction loop's does.
        profile = get_profile(name)
        fast = TraceGenerator(profile, seed=7)
        reference = TraceGenerator(profile, seed=7)
        for size in (1, 3, 513, 1000, 5):
            chunk = fast._generate_chunk(size)
            expected = TraceArrays.from_instructions(
                reference._generate_chunk_reference(size)
            )
            assert chunk == expected

    def test_chunked_api_is_size_invariant(self):
        profile = get_profile("gzip")
        one_shot = TraceGenerator(profile, seed=1).generate_arrays(9000)
        gen = TraceGenerator(profile, seed=1)
        stitched = TraceArrays.concat(
            [gen.generate_arrays(4000), gen.generate_arrays(5000)]
        )
        assert stitched == one_shot


class TestBatchedGeneration:
    def test_lockstep_batch_matches_solo_generation(self):
        # Mixed profiles, a duplicate profile under a different seed, and
        # deliberately ragged counts (sub-chunk, chunk-multiple, and
        # mid-chunk drop-out of the lockstep passes).
        specs = [
            ("gzip", 42, 100),
            ("mcf", 42, 9000),
            ("swim", 7, 8192),
            ("art", 3, 5000),
            ("gzip", 7, 12000),
        ]
        batch = generate_arrays_batch(
            [TraceGenerator(get_profile(n), seed=s) for n, s, _ in specs],
            [c for _, _, c in specs],
        )
        assert isinstance(batch, TraceBatch)
        assert len(batch) == len(specs)
        for b, (name, seed, count) in enumerate(specs):
            solo = TraceGenerator(get_profile(name), seed=seed)
            assert batch.sim(b) == solo.generate_arrays(count)

    def test_generators_continue_solo_after_batch(self):
        # State write-back: a generator that took part in a lockstep
        # batch must produce the same continuation a solo one does.
        batched = [
            TraceGenerator(get_profile(n), seed=11) for n in ("gzip", "mcf")
        ]
        first = generate_arrays_batch(batched, [6000, 2500])
        solo = [
            TraceGenerator(get_profile(n), seed=11) for n in ("gzip", "mcf")
        ]
        for b, gen in enumerate(solo):
            assert first.sim(b) == gen.generate_arrays(len(first.sim(b)))
        for b, gen in enumerate(batched):
            assert gen.generate_arrays(3000) == solo[b].generate_arrays(3000)

    def test_solo_generator_can_join_a_batch(self):
        # The reverse hand-off: solo generation first, then lockstep.
        joined = TraceGenerator(get_profile("swim"), seed=2)
        joined.generate_arrays(1234)
        other = TraceGenerator(get_profile("gzip"), seed=2)
        batch = generate_arrays_batch([joined, other], [3000, 3000])
        reference = TraceGenerator(get_profile("swim"), seed=2)
        reference.generate_arrays(1234)
        assert batch.sim(0) == reference.generate_arrays(3000)

    def test_batch_round_trip_through_traces(self):
        traces = [
            TraceGenerator(get_profile(n), seed=5).generate_arrays(c)
            for n, c in (("gzip", 40), ("mcf", 25))
        ]
        batch = TraceBatch.from_traces(traces)
        assert batch.to_traces() == traces

    def test_prime_trace_batch_matches_unprimed_lookup(self):
        cache = memo.get_cache()
        profiles = [get_profile(n) for n in ("gzip", "mcf")]
        cache.prime_trace_batch([(p, 42, 5000) for p in profiles])
        for p in profiles:
            primed = cache.trace_arrays(p, 42, 5000)
            assert primed == TraceGenerator(p, seed=42).generate_arrays(5000)
        assert cache.stats["trace"].hits == 2


class TestPreloadFastPath:
    @pytest.mark.parametrize(
        "policy", [NucaPolicy.DISTRIBUTED_SETS, NucaPolicy.DISTRIBUTED_WAYS]
    )
    @pytest.mark.parametrize("name", ["gzip", "mcf"])
    def test_bulk_install_matches_reference_loop(self, name, policy):
        profile = get_profile(name)
        fast = build_memory(ChipModel.TWO_D_A, policy=policy)
        fast.preload_profile(profile)
        reference = build_memory(ChipModel.TWO_D_A, policy=policy)
        reference._preload_profile_reference(profile)
        assert fast.l1d._sets == reference.l1d._sets
        assert fast.l1i._sets == reference.l1i._sets
        assert fast.l2._sets == reference.l2._sets


class TestTimingEquivalence:
    def test_leading_columnar_path_is_bit_identical(self):
        profile = get_profile("gzip")
        arrays = TraceGenerator(profile, seed=11).generate_arrays(6000)
        objects = arrays.to_instructions()
        outcomes = []
        for trace in (objects, arrays):
            memory = build_memory(ChipModel.TWO_D_A)
            memory.preload_profile(profile)
            core = LeadingCoreTiming(LeadingCoreConfig(), memory)
            outcomes.append(dataclasses.asdict(core.run(trace, warmup=1500)))
        assert outcomes[0] == outcomes[1]

    def test_rmt_columnar_path_is_bit_identical(self):
        profile = get_profile("mcf")
        arrays = TraceGenerator(profile, seed=5).generate_arrays(5000)
        objects = arrays.to_instructions()
        outcomes = []
        for trace in (objects, arrays):
            memory = build_memory(ChipModel.THREE_D_2A)
            memory.preload_profile(profile)
            simulator = RmtSimulator(
                leading_config=LeadingCoreConfig(),
                checker_config=CheckerCoreConfig(),
                memory=memory,
                transfer_latency_cycles=1,
            )
            outcomes.append(
                dataclasses.asdict(simulator.run(trace, warmup=1000))
            )
        assert outcomes[0] == outcomes[1]


# ---------------------------------------------------------------------
# End-to-end anchors: exact IPC values recorded from the pre-columnar
# object pipeline (warmup=1000, measured=4000, seed=42).  A change in any
# float here means the fast path broke RNG draw order or timing.
_GOLDEN_FIG6 = {
    "gzip": {
        "2d-a": 1.7014036580178646,
        "2d-2a": 1.5754233950374164,
        "3d-2a": 1.6877637130801688,
        "3d-checker": 1.7014036580178646,
    },
    "swim": {
        "2d-a": 1.2570710245128849,
        "2d-2a": 1.124543154343548,
        "3d-2a": 1.2430080795525171,
        "3d-checker": 1.2570710245128849,
    },
    "mcf": {
        "2d-a": 0.4799616030717543,
        "2d-2a": 0.43043150758635534,
        "3d-2a": 0.47365304914150386,
        "3d-checker": 0.4797313504437515,
    },
}


class TestGoldenFig6:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_fig6_is_exact_across_job_counts(self, jobs):
        window = SimulationWindow(warmup=1000, measured=4000)
        rows = fig6_performance(
            window=window,
            benchmarks=[get_profile(name) for name in _GOLDEN_FIG6],
            jobs=jobs,
        )
        assert {row.benchmark: row.ipc for row in rows} == _GOLDEN_FIG6

    @pytest.mark.parametrize("jobs,chunksize", [(1, 12), (2, 8)])
    def test_fig6_batched_chunks_are_exact(self, jobs, chunksize):
        # Oversized chunks group several benchmarks per chunk, so the
        # prepare hook primes their traces in one lockstep batch; the
        # IPC floats must still match the object pipeline exactly.
        window = SimulationWindow(warmup=1000, measured=4000)
        rows = fig6_performance(
            window=window,
            benchmarks=[get_profile(name) for name in _GOLDEN_FIG6],
            jobs=jobs,
            chunksize=chunksize,
        )
        assert {row.benchmark: row.ipc for row in rows} == _GOLDEN_FIG6
