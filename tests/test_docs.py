"""Documentation consistency: the docs point at things that exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_md():
    return (ROOT / "EXPERIMENTS.md").read_text()


@pytest.fixture(scope="module")
def readme():
    return (ROOT / "README.md").read_text()


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/ARCHITECTURE.md", "docs/API.md"):
        assert (ROOT / name).exists(), name


def test_design_confirms_paper_identity(design):
    assert "Leveraging 3D Technology for Improved Reliability" in design
    assert "MICRO 2007" in design


def test_design_bench_references_exist(design):
    for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
        assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(1)


def test_experiments_bench_references_exist(experiments_md):
    for match in re.finditer(r"`bench_(\w+)`", experiments_md):
        assert (ROOT / "benchmarks" / f"bench_{match.group(1)}.py").exists(), (
            match.group(0)
        )


def test_readme_example_references_exist(readme):
    for match in re.finditer(r"examples/(\w+\.py)", readme):
        assert (ROOT / "examples" / match.group(1)).exists(), match.group(1)


def test_every_table_and_figure_has_a_bench():
    benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
    required = {
        "bench_table1_config.py", "bench_table2_blocks.py",
        "bench_table3_thermal_params.py", "bench_table4_d2d_bandwidth.py",
        "bench_table5_pipeline_power.py", "bench_table6_variability.py",
        "bench_table7_itrs.py", "bench_table8_tech_power.py",
        "bench_fig4_thermal_sweep.py", "bench_fig5_thermal_per_bench.py",
        "bench_fig6_performance.py", "bench_fig7_dfs_histogram.py",
        "bench_fig8_ser_scaling.py", "bench_fig9_mbu.py",
        "bench_s2_fault_coverage.py", "bench_s33_thermal_constraint.py",
        "bench_s34_interconnect.py", "bench_s4_heterogeneous.py",
    }
    assert required <= benches


def test_examples_are_runnable_scripts():
    for script in (ROOT / "examples").glob("*.py"):
        text = script.read_text()
        assert '__name__ == "__main__"' in text, script.name
        assert text.startswith("#!/usr/bin/env python"), script.name


def test_experiments_records_headline_numbers(experiments_md):
    # The reproduction's headline comparisons are recorded.
    for token in ("1409", "1.4 GHz", "0.6", "+4.5", "2.21"):
        assert token in experiments_md, token
