"""The one-shot report generator."""

import json

from repro.experiments.report import generate_report
from repro.experiments.runner import SimulationWindow


def test_generate_report(tmp_path):
    data = generate_report(
        tmp_path, window=SimulationWindow(warmup=1000, measured=4000),
        subset=("gzip",),
    )
    json_path = tmp_path / "results.json"
    md_path = tmp_path / "results.md"
    assert json_path.exists() and md_path.exists()

    loaded = json.loads(json_path.read_text())
    assert loaded["vias"]["num_vias"] == 1409
    assert len(loaded["fig4"]) == 7
    assert loaded["coverage"]["store_stream_correct"] is True
    assert set(loaded["wires"]) == {"2d-a", "2d-2a", "3d-2a"}
    assert abs(sum(float(v) for v in loaded["fig7"]["fractions"].values()) - 1.0) < 1e-6

    text = md_path.read_text()
    assert "Figure 4" in text
    assert "Table 8" in text
    assert "fault coverage" in text
    assert data["vias"]["num_vias"] == 1409
