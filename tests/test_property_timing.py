"""Property-based tests over the timing engines with generated traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import (
    CheckerCoreConfig,
    ChipModel,
    LeadingCoreConfig,
    NucaConfig,
)
from repro.core.leading import LeadingCoreTiming
from repro.core.memory import MemoryHierarchy
from repro.core.rmt import RmtSimulator
from repro.isa.trace import generate_trace
from repro.workloads.profiles import spec2k_suite

_PROFILES = spec2k_suite()


def _core():
    config = LeadingCoreConfig()
    memory = MemoryHierarchy(config, NucaConfig(num_banks=6), ChipModel.TWO_D_A)
    return LeadingCoreTiming(config, memory)


@given(
    profile=st.sampled_from(_PROFILES),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=10, deadline=None)
def test_leading_commits_monotone_for_any_workload(profile, seed):
    core = _core()
    trace = generate_trace(profile, 3000, seed=seed)
    commits = [core.schedule(instr) for instr in trace]
    assert all(b >= a for a, b in zip(commits, commits[1:]))
    result = core.result(len(trace))
    assert 0.0 < result.ipc <= 4.0 + 1e-9


@given(
    profile=st.sampled_from(_PROFILES),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=8, deadline=None)
def test_rmt_invariants_for_any_workload(profile, seed):
    config = LeadingCoreConfig()
    memory = MemoryHierarchy(config, NucaConfig(num_banks=6), ChipModel.TWO_D_A)
    simulator = RmtSimulator(
        leading_config=config,
        checker_config=CheckerCoreConfig(),
        memory=memory,
    )
    trace = generate_trace(profile, 3000, seed=seed)
    result = simulator.run(trace)
    # Every instruction is checked, after its commit, in order.
    assert result.checker_instructions == len(trace)
    consumes = simulator._consume_times
    commits = simulator._commit_times
    assert all(b >= a for a, b in zip(consumes, consumes[1:]))
    assert all(c >= k for k, c in zip(commits, consumes))
    # Residency fractions are a distribution.
    total = sum(result.frequency_residency.values())
    assert abs(total - 1.0) < 1e-9 or total == 0.0


@given(gate=st.integers(0, 100_000))
@settings(max_examples=20, deadline=None)
def test_commit_gate_is_respected(gate):
    from repro.isa.instruction import Instruction
    from repro.isa.opcodes import OpClass

    core = _core()
    instr = Instruction(0, OpClass.IALU, dst=1, src1=30, src2=30, pc=0)
    assert core.schedule(instr, commit_gate=gate) >= gate
