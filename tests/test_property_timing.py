"""Property-based tests over the timing engines with generated traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import (
    CheckerCoreConfig,
    ChipModel,
    LeadingCoreConfig,
    NucaConfig,
)
from repro.core.leading import LeadingCoreTiming
from repro.core.memory import MemoryHierarchy
from repro.core.rmt import RmtSimulator
from repro.isa.trace import generate_trace
from repro.workloads.profiles import spec2k_suite

_PROFILES = spec2k_suite()


def _core():
    config = LeadingCoreConfig()
    memory = MemoryHierarchy(config, NucaConfig(num_banks=6), ChipModel.TWO_D_A)
    return LeadingCoreTiming(config, memory)


@given(
    profile=st.sampled_from(_PROFILES),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=10, deadline=None)
def test_leading_commits_monotone_for_any_workload(profile, seed):
    core = _core()
    trace = generate_trace(profile, 3000, seed=seed)
    commits = [core.schedule(instr) for instr in trace]
    assert all(b >= a for a, b in zip(commits, commits[1:]))
    result = core.result(len(trace))
    assert 0.0 < result.ipc <= 4.0 + 1e-9


@given(
    profile=st.sampled_from(_PROFILES),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=8, deadline=None)
def test_rmt_invariants_for_any_workload(profile, seed):
    config = LeadingCoreConfig()
    memory = MemoryHierarchy(config, NucaConfig(num_banks=6), ChipModel.TWO_D_A)
    simulator = RmtSimulator(
        leading_config=config,
        checker_config=CheckerCoreConfig(),
        memory=memory,
    )
    trace = generate_trace(profile, 3000, seed=seed)
    result = simulator.run(trace)
    # Every instruction is checked, after its commit, in order.
    assert result.checker_instructions == len(trace)
    consumes = simulator._consume_times
    commits = simulator._commit_times
    assert all(b >= a for a, b in zip(consumes, consumes[1:]))
    assert all(c >= k for k, c in zip(commits, consumes))
    # Residency fractions are a distribution.
    total = sum(result.frequency_residency.values())
    assert abs(total - 1.0) < 1e-9 or total == 0.0


@given(gate=st.integers(0, 100_000))
@settings(max_examples=20, deadline=None)
def test_commit_gate_is_respected(gate):
    from repro.isa.instruction import Instruction
    from repro.isa.opcodes import OpClass

    core = _core()
    instr = Instruction(0, OpClass.IALU, dst=1, src1=30, src2=30, pc=0)
    assert core.schedule(instr, commit_gate=gate) >= gate


# ---------------------------------------------------------------------
# consume_window vs the scalar oracle.  Windows of random op mixes under
# random frequency-ratio switches at window boundaries: the batched
# checker consume must reproduce consume_op's check-commit times exactly.

_ROW = st.tuples(
    st.integers(0, 3),                 # FU pool
    st.integers(-1, 70),               # src1 (out-of-range values too)
    st.integers(-1, 70),               # src2
    st.integers(-1, 62),               # dst (-1 = no writeback)
    st.integers(1, 12),                # execution latency
    st.floats(0.0, 6.0),               # arrival gap to the previous row
)


@given(
    rvp=st.booleans(),
    windows=st.lists(
        st.tuples(
            st.sampled_from([0.1, 0.3, 0.5, 0.8, 1.0]),  # ratio for the window
            st.lists(_ROW, min_size=0, max_size=60),
        ),
        min_size=1,
        max_size=5,
    ),
)
@settings(max_examples=60, deadline=None)
def test_consume_window_matches_scalar_oracle(rvp, windows):
    import numpy as np

    from repro.core.checker import InOrderCheckerTiming

    config = CheckerCoreConfig(uses_register_value_prediction=rvp)
    batched = InOrderCheckerTiming(config)
    scalar = InOrderCheckerTiming(config)
    clock = 0.0
    for ratio, rows in windows:
        # Both sides switch frequency at the same window boundary, like
        # the RMT harness does at DFS interval edges.
        batched.set_frequency_ratio(ratio)
        scalar.set_frequency_ratio(ratio)
        available = []
        for *_fields, gap in rows:
            clock += gap
            available.append(clock)
        columns = [
            np.array([row[i] for row in rows], dtype=np.int64)
            for i in range(5)
        ]
        got = batched.consume_window(
            *columns, np.array(available, dtype=np.float64)
        )
        expected = [
            scalar.consume_op(pool, s1, s2, dst, lat, avail)
            for (pool, s1, s2, dst, lat, _gap), avail in zip(rows, available)
        ]
        assert got.tolist() == expected
