"""Counters, running means, histograms, stat groups."""

import pytest

from repro.common.stats import Counter, Histogram, RunningMean, StatGroup


class TestCounter:
    def test_increment(self):
        c = Counter("c")
        c.increment()
        c.increment(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    def test_reset(self):
        c = Counter("c")
        c.increment(3)
        c.reset()
        assert c.value == 0


class TestRunningMean:
    def test_mean_min_max(self):
        m = RunningMean("m")
        for x in (1.0, 2.0, 6.0):
            m.add(x)
        assert m.mean == pytest.approx(3.0)
        assert m.minimum == 1.0
        assert m.maximum == 6.0
        assert m.count == 3

    def test_empty_mean_is_zero(self):
        assert RunningMean("m").mean == 0.0

    def test_reset(self):
        m = RunningMean("m")
        m.add(5.0)
        m.reset()
        assert m.count == 0
        assert m.mean == 0.0


class TestHistogram:
    def test_requires_bins(self):
        with pytest.raises(ValueError):
            Histogram("h", [])

    def test_add_and_fractions(self):
        h = Histogram("h", [0.1, 0.2, 0.3])
        h.add(0.2)
        h.add(0.2)
        h.add(0.3)
        assert h.total == 3
        assert h.fractions() == pytest.approx([0.0, 2 / 3, 1 / 3])

    def test_unknown_bin_rejected(self):
        h = Histogram("h", [1.0])
        with pytest.raises(KeyError):
            h.add(2.0)

    def test_mode_and_mean(self):
        h = Histogram("h", [0.5, 1.0])
        h.add(0.5, 3)
        h.add(1.0, 1)
        assert h.mode() == 0.5
        assert h.mean() == pytest.approx((0.5 * 3 + 1.0) / 4)

    def test_empty_fractions(self):
        h = Histogram("h", [1.0, 2.0])
        assert h.fractions() == [0.0, 0.0]
        assert h.mean() == 0.0


class TestStatGroup:
    def test_get_or_create_returns_same_object(self):
        g = StatGroup("g")
        assert g.counter("a") is g.counter("a")

    def test_as_dict(self):
        g = StatGroup("g")
        g.counter("c").increment(2)
        g.running_mean("m").add(4.0)
        g.histogram("h", [1.0]).add(1.0)
        snapshot = g.as_dict()
        assert snapshot["c"] == 2
        assert snapshot["m"] == pytest.approx(4.0)
        assert snapshot["h"] == [1]

    def test_reset_all(self):
        g = StatGroup("g")
        g.counter("c").increment()
        g.reset()
        assert g["c"].value == 0

    def test_contains_and_names(self):
        g = StatGroup("g")
        g.counter("b")
        g.counter("a")
        assert "a" in g
        assert g.names() == ["a", "b"]
