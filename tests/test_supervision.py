"""Self-healing sweep supervision (worker respawn, poison quarantine,
crash-consistent checkpoints, drains).

Covers the PR 9 robustness layer end to end: the new supervision chaos
kinds, the socket backend's respawn budget (and its chaos-vetoed
failure path), worker-hang recovery through the chunk lease, poison-task
bisection and quarantine with a *real* worker-killing task, the
checkpoint durability policy (``REPRO_CKPT_FSYNC``), the atomic
finalize marker, short-write chaos and resume convergence, graceful
drains (``SIGTERM``), the partial report, a hypothesis interleaving
property over the at-most-once commit, and two real-subprocess
recovery tests (``kill -9`` mid-checkpoint-write, SIGTERM drain with
``--resume``).
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    ConfigError,
    SweepDrainedError,
    TaskQuarantinedError,
)
from repro.experiments import chaos as chaos_mod
from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments import engine
from repro.experiments.chaos import ChaosPolicy
from repro.experiments.engine import TaskPolicy, run_sweep
from repro.experiments.executors import _TaskOutcome, set_default_executor
from repro.experiments.report import render_partial_report
from repro.obs import metrics


@pytest.fixture(autouse=True)
def _clean_engine():
    engine.clear_timings()
    engine.clear_drain()
    engine.set_default_policy(None)
    set_default_executor(None)
    chaos_mod.set_chaos(None)
    checkpoint_mod.set_checkpoint_dir(None)
    yield
    engine.clear_timings()
    engine.clear_drain()
    engine.set_default_policy(None)
    set_default_executor(None)
    chaos_mod.set_chaos(None)
    checkpoint_mod.set_checkpoint_dir(None)


# -- module-level worker functions (must pickle into workers) -----------

def _double(x):
    return x * 2


def _bump_delta(x):
    m = metrics.get_registry()
    m.counter("supertest.calls").inc()
    return x + 1


_POISON_VALUE = 13


def _poison(x):
    # A genuinely poisonous task: kills any *worker* process it runs in
    # (never the controller, so inline/degraded execution would survive).
    if x == _POISON_VALUE \
            and multiprocessing.current_process().name != "MainProcess":
        os._exit(21)
    return x * 2


def _drain_then_double(x):
    engine.request_drain("test")
    return x * 2


# ---------------------------------------------------------------------
class TestSupervisionChaosParse:
    def test_parse_new_kinds(self):
        policy = ChaosPolicy.parse(
            "worker-hang:0.5:1.5,respawn-fail:0.3,short-write:0.2,seed:7"
        )
        assert policy.hang_p == 0.5
        assert policy.hang_s == 1.5
        assert policy.respawn_fail_p == 0.3
        assert policy.short_write_p == 0.2
        assert policy.seed == 7
        assert ChaosPolicy.parse("hang:0.4").hang_p == 0.4
        assert ChaosPolicy.parse("respawn:0.4").respawn_fail_p == 0.4
        assert ChaosPolicy.parse("short:0.4").short_write_p == 0.4

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChaosPolicy(hang_p=1.5)
        with pytest.raises(ConfigError):
            ChaosPolicy(respawn_fail_p=-0.1)
        with pytest.raises(ConfigError):
            ChaosPolicy(short_write_p=2.0)
        with pytest.raises(ConfigError):
            ChaosPolicy(hang_s=-1.0)

    def test_decisions_are_deterministic(self):
        a = ChaosPolicy(hang_p=0.5, respawn_fail_p=0.5, short_write_p=0.5,
                        seed=3)
        b = ChaosPolicy(hang_p=0.5, respawn_fail_p=0.5, short_write_p=0.5,
                        seed=3)
        for i in range(20):
            assert a.hangs(i, 0) == b.hangs(i, 0)
            assert a.fails_respawn(i) == b.fails_respawn(i)
            assert a.short_writes(i) == b.short_writes(i)
        # Hangs only ever fire on a chunk's first pass.
        full = ChaosPolicy(hang_p=1.0)
        assert full.hangs(0, 0) and not full.hangs(0, 1)


# ---------------------------------------------------------------------
class TestRespawn:
    def test_respawn_keeps_sweep_on_socket(self):
        # Every first attempt kills its worker; with respawn budget the
        # sweep completes on the socket backend itself (no degradation)
        # and the replacements' reruns are attributed, so results and
        # metrics stay bit-identical to a clean serial run.
        clean, clean_t = run_sweep(_bump_delta, [1, 2, 3, 4], jobs=1,
                                   record=False)
        got, timing = run_sweep(
            _bump_delta, [1, 2, 3, 4], jobs=2, chunksize=1,
            executor="socket", record=False,
            chaos=ChaosPolicy(kill_p=1.0),
            policy=TaskPolicy(max_respawns=8, respawn_backoff_s=0.0),
        )
        assert got == clean
        assert not timing.degraded
        assert timing.backends == ["socket"]
        assert timing.respawns >= 1
        assert timing.lost_workers >= 1
        assert timing.failures == 0
        assert timing.metrics.counters == clean_t.metrics.counters

    def test_respawn_fail_chaos_exhausts_budget_and_degrades(self):
        # Chaos vetoes every replacement: the budget is spent without a
        # single worker coming back, so the old degradation chain is the
        # final fallback and the sweep still completes correctly.
        clean, _ = run_sweep(_double, [1, 2, 3, 4], jobs=1, record=False)
        got, timing = run_sweep(
            _double, [1, 2, 3, 4], jobs=2, chunksize=1,
            executor="socket", record=False,
            chaos=ChaosPolicy(kill_p=1.0, respawn_fail_p=1.0),
            policy=TaskPolicy(max_respawns=4, respawn_backoff_s=0.0),
        )
        assert got == clean
        assert timing.degraded
        assert timing.backends[0] == "socket"
        assert timing.respawn_failures >= 1
        assert timing.respawns == 0
        assert timing.failures == 0


# ---------------------------------------------------------------------
class TestWorkerHang:
    def test_hung_worker_recovered_by_lease(self):
        # The hang keeps heartbeats flowing, so only the chunk lease can
        # catch it; the hung worker is cancelled, the chunk requeues with
        # the hang attributed (the rerun is injection-free), and a
        # replacement restores capacity.
        clean, _ = run_sweep(_double, [1, 2, 3, 4], jobs=1, record=False)
        got, timing = run_sweep(
            _double, [1, 2, 3, 4], jobs=2, chunksize=2,
            executor="socket", record=False,
            chaos=ChaosPolicy(hang_p=1.0, hang_s=60.0),
            policy=TaskPolicy(timeout_s=0.3, respawn_backoff_s=0.0),
        )
        assert got == clean
        assert timing.lease_expiries >= 1
        assert timing.failures == 0
        assert timing.timeouts == 0


# ---------------------------------------------------------------------
class TestPoisonQuarantine:
    def test_poison_task_is_bisected_and_quarantined(self, tmp_path):
        # One task genuinely kills every worker that runs it (no chaos to
        # attribute): the supervisor bisects its chunk down to the single
        # grain, quarantines it, and the rest of the sweep completes.
        checkpoint_mod.set_checkpoint_dir(tmp_path)
        items = [1, 2, _POISON_VALUE, 4]
        got, timing = run_sweep(
            _poison, items, jobs=2, chunksize=2,
            executor="socket", label="poison",
            policy=TaskPolicy(fail_fast=False, max_respawns=16,
                              respawn_backoff_s=0.0),
        )
        assert got == [2, 4, None, 8]
        assert timing.bisections >= 1
        assert len(timing.quarantined) == 1
        verdict = timing.quarantined[0]
        assert verdict["index"] == 2
        assert "quarantined" in verdict["error"]
        assert timing.failures == 1
        # The verdict is durable: the checkpoint records the quarantine
        # (payload-free) and the read-only scan surfaces it.
        ckpt_files = list(tmp_path.glob("*/poison.jsonl"))
        assert len(ckpt_files) == 1
        summary = checkpoint_mod.scan_sweep(ckpt_files[0])
        assert summary["tasks_committed"] == 3
        assert len(summary["quarantined"]) == 1
        assert summary["quarantined"][0]["index"] == 2

    def test_quarantine_raises_under_fail_fast(self):
        with pytest.raises(TaskQuarantinedError):
            try:
                run_sweep(
                    _poison, [1, 2, _POISON_VALUE, 4], jobs=2, chunksize=2,
                    executor="socket", record=False,
                    policy=TaskPolicy(fail_fast=True, max_respawns=16,
                                      respawn_backoff_s=0.0),
                )
            except engine.SweepAbortedError as exc:
                raise exc.failures[0]


# ---------------------------------------------------------------------
class TestFsyncPolicy:
    def test_parse(self, monkeypatch):
        monkeypatch.delenv(checkpoint_mod.FSYNC_ENV_VAR, raising=False)
        assert checkpoint_mod.fsync_interval() == 2.0
        for raw in ("off", "no", "never", "false"):
            monkeypatch.setenv(checkpoint_mod.FSYNC_ENV_VAR, raw)
            assert checkpoint_mod.fsync_interval() is None
        for raw in ("line", "always", "on", "true"):
            monkeypatch.setenv(checkpoint_mod.FSYNC_ENV_VAR, raw)
            assert checkpoint_mod.fsync_interval() == 0.0
        monkeypatch.setenv(checkpoint_mod.FSYNC_ENV_VAR, "0.25")
        assert checkpoint_mod.fsync_interval() == 0.25
        monkeypatch.setenv(checkpoint_mod.FSYNC_ENV_VAR, "bogus")
        with pytest.raises(ConfigError):
            checkpoint_mod.fsync_interval()
        monkeypatch.setenv(checkpoint_mod.FSYNC_ENV_VAR, "-3")
        with pytest.raises(ConfigError):
            checkpoint_mod.fsync_interval()

    def test_line_policy_fsyncs_every_append(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(checkpoint_mod.os, "fsync",
                            lambda fd: calls.append(fd))
        monkeypatch.setenv(checkpoint_mod.FSYNC_ENV_VAR, "line")
        ckpt = checkpoint_mod.SweepCheckpoint(tmp_path / "s.jsonl")
        ckpt.append("k1", 0, "t1", 0.1, 1, None)
        ckpt.append("k2", 1, "t2", 0.1, 2, None)
        assert len(calls) >= 2
        ckpt.close()

    def test_off_policy_never_fsyncs(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(checkpoint_mod.os, "fsync",
                            lambda fd: calls.append(fd))
        monkeypatch.setenv(checkpoint_mod.FSYNC_ENV_VAR, "off")
        ckpt = checkpoint_mod.SweepCheckpoint(tmp_path / "s.jsonl")
        ckpt.append("k1", 0, "t1", 0.1, 1, None)
        ckpt.finalize(1)
        ckpt.close()
        assert calls == []
        # The data still flushed and the marker still landed.
        assert (tmp_path / "s.jsonl.done").exists()


class TestFinalizeMarker:
    def test_finalize_is_atomic_and_detected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        ckpt = checkpoint_mod.SweepCheckpoint(path)
        ckpt.append("k1", 0, "t1", 0.1, "r1", None)
        ckpt.append("k2", 1, "t2", 0.2, "r2", None)
        assert not ckpt.finalized
        ckpt.finalize(2, failures=0)
        ckpt.close()
        assert ckpt.finalized
        assert (tmp_path / "sweep.jsonl.done").exists()
        assert not (tmp_path / "sweep.jsonl.done.tmp").exists()
        again = checkpoint_mod.SweepCheckpoint(path)
        assert again.finalized
        again.close()
        summary = checkpoint_mod.scan_sweep(path)
        assert summary["finalized"]
        assert summary["tasks_committed"] == 2
        assert summary["finalize_info"]["tasks"] == 2
        assert summary["finalize_info"]["records"] == 2

    def test_sweep_completion_publishes_marker(self, tmp_path):
        checkpoint_mod.set_checkpoint_dir(tmp_path)
        run_sweep(_double, [1, 2, 3], jobs=1, label="done")
        files = list(tmp_path.glob("*/done.jsonl.done"))
        assert len(files) == 1


# ---------------------------------------------------------------------
class TestShortWriteChaos:
    def test_short_write_tears_one_record_and_resume_converges(
            self, tmp_path):
        checkpoint_mod.set_checkpoint_dir(tmp_path)
        chaos = ChaosPolicy(short_write_p=1.0)
        clean, _ = run_sweep(_double, [1, 2, 3], jobs=1, record=False)
        got, _timing = run_sweep(_double, [1, 2, 3], jobs=1, label="torn",
                                 chaos=chaos)
        assert got == clean  # in-memory results unaffected by the tear
        path = next(tmp_path.glob("*/torn.jsonl"))
        reread = checkpoint_mod.SweepCheckpoint(path, chaos=chaos)
        # Exactly one record was torn (the fault is one-shot) and the
        # survivors restored; a file already carrying a torn line never
        # re-arms, so the resume converges.
        assert reread.truncated_lines == 1
        assert len(reread.records) == 2
        assert not reread._short_write_armed
        reread.close()
        got2, timing2 = run_sweep(_double, [1, 2, 3], jobs=1, label="torn",
                                  chaos=chaos)
        assert got2 == clean
        assert timing2.resumed_tasks == 2
        assert checkpoint_mod.scan_sweep(path)["tasks_committed"] == 3


# ---------------------------------------------------------------------
class TestDrain:
    def test_drain_strands_pending_chunks_and_raises(self, tmp_path):
        checkpoint_mod.set_checkpoint_dir(tmp_path)
        with pytest.raises(SweepDrainedError) as exc_info:
            run_sweep(_drain_then_double, [1, 2, 3, 4], jobs=1, chunksize=1,
                      label="drained")
        exc = exc_info.value
        assert exc.completed == 1
        assert exc.stranded == 3
        assert exc.total == 4
        assert engine.drain_requested()
        # The committed task is on disk; after clearing the drain the
        # same run resumes and completes bit-identically.
        engine.clear_drain()
        path = next(tmp_path.glob("*/drained.jsonl"))
        assert checkpoint_mod.scan_sweep(path)["tasks_committed"] == 1
        assert not checkpoint_mod.scan_sweep(path)["finalized"]
        got, timing = run_sweep(_double, [1, 2, 3, 4], jobs=1, chunksize=1,
                                label="drained")
        assert got == [2, 4, 6, 8]
        assert timing.resumed_tasks == 1
        assert checkpoint_mod.scan_sweep(path)["finalized"]

    def test_drain_flag_round_trip(self):
        assert not engine.drain_requested()
        engine.request_drain("unit")
        assert engine.drain_requested()
        engine.clear_drain()
        assert not engine.drain_requested()


# ---------------------------------------------------------------------
class TestPartialReport:
    def test_renders_partial_marker_and_quarantine_table(self, tmp_path):
        root = tmp_path / "ckpt"
        run_dir = root / "run-abc"
        run_dir.mkdir(parents=True)
        ckpt = checkpoint_mod.SweepCheckpoint(run_dir / "fig6.jsonl")
        ckpt.append("00000:aa", 0, "gzip", 0.5, 1.0, None)
        ckpt.append_quarantine("00001:bb", 1, "mcf", "killed its worker")
        ckpt.close()
        out = tmp_path / "out"
        data = render_partial_report("run-abc", out, checkpoint_root=root)
        assert data["partial"] is True
        assert data["tasks_committed"] == 1
        assert len(data["quarantined"]) == 1
        text = (out / "results_partial.md").read_text()
        assert "PARTIAL" in text
        assert "interrupted" in text
        assert "--resume run-abc" in text
        assert "00001:bb" in text
        payload = json.loads((out / "results_partial.json").read_text())
        assert payload["run_id"] == "run-abc"

    def test_requires_a_checkpoint_root(self, tmp_path):
        with pytest.raises(ConfigError):
            render_partial_report("run-abc", tmp_path)


# ---------------------------------------------------------------------
class TestAtMostOnceInterleavings:
    @settings(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=st.lists(
        st.tuples(st.integers(0, 4), st.sampled_from(["ok", "quarantine"])),
        max_size=30,
    ))
    def test_any_interleaving_commits_each_key_once(self, ops):
        # Quarantine verdicts and (possibly duplicated) successful
        # results may interleave arbitrarily during requeue/respawn
        # storms; whatever the order, each task key is decided exactly
        # once — by its first event — and duplicates are only counted.
        tasks = list(range(5))
        timing = engine.SweepTiming(label="prop", jobs=1, run_id="prop")
        state = engine._SweepState(
            tasks, "prop", TaskPolicy(fail_fast=False), timing, None
        )
        for index, op in ops:
            if op == "quarantine":
                state.quarantine(index, 0, "crash")
            else:
                state.absorb(_TaskOutcome(
                    index=index, ok=True, result=index * 2, attempts=1,
                ))
        first: dict = {}
        dup_ok = 0
        for index, op in ops:
            if index in first:
                dup_ok += op == "ok"
            else:
                first[index] = op
        assert len(state.committed) == len(first)
        for index, op in first.items():
            if op == "quarantine":
                assert state.results[index] is None
            else:
                assert state.results[index] == index * 2
        quarantined = sum(op == "quarantine" for op in first.values())
        assert timing.failures == quarantined
        assert len(timing.quarantined) == quarantined
        assert timing.duplicate_results == dup_ok


# ---------------------------------------------------------------------
# Real-subprocess recovery: a hard kill mid-checkpoint-write and a
# SIGTERM drain, both completed with --resume and checked for
# bit-identical results against a clean serial run.

def _cli_env(tmp_path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parents[1] / "src"
    )
    env["PYTHONUNBUFFERED"] = "1"
    env.pop("REPRO_CHAOS", None)
    return env


def _spawn_fig6(tmp_path, env, *extra):
    ckpt_dir = tmp_path / "ckpt"
    trace = tmp_path / "events.jsonl"
    cmd = [
        sys.executable, "-m", "repro", "fig6",
        "--benchmarks", "gzip,mcf,mesa,art",
        "--window", "8000", "--jobs", "2",
        "--checkpoint", str(ckpt_dir),
        "--trace-out", str(trace),
        *extra,
    ]
    proc = subprocess.Popen(
        cmd, env=env, cwd=tmp_path,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    return proc, ckpt_dir, trace


def _wait_for_task_done(trace: Path, timeout_s: float = 60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if trace.exists():
            for line in trace.read_text().splitlines():
                if '"task_done"' in line:
                    return
        time.sleep(0.05)
    raise AssertionError(f"no task_done event within {timeout_s}s")


def _manifest_counters(path: Path) -> dict:
    manifest = json.loads(path.read_text())
    counters = dict(manifest["metrics"]["counters"])
    # Scheduling-sensitive engine counters (how many chunks each backend
    # ran) are not part of the bit-identity contract; the simulation's
    # own counters are.
    return {k: v for k, v in counters.items()
            if not k.startswith(("engine.", "memo."))}


@pytest.mark.slow
class TestCrashRecoverySubprocess:
    def test_kill9_mid_checkpoint_write_then_resume_bit_identical(
            self, tmp_path):
        env = _cli_env(tmp_path)
        env[checkpoint_mod.FSYNC_ENV_VAR] = "line"
        proc, ckpt_dir, trace = _spawn_fig6(
            tmp_path, env, "--executor", "local"
        )
        try:
            _wait_for_task_done(trace)
        finally:
            # SIGKILL: no cleanup, no atexit — whatever bytes the
            # checkpoint writer got out are all that survives.
            proc.kill()
            proc.wait(timeout=30)
        run_dirs = [p for p in ckpt_dir.iterdir() if p.is_dir()]
        assert len(run_dirs) == 1
        run_id = run_dirs[0].name
        # Whatever byte boundary the kill landed on, every checkpoint
        # file must be restorable (torn tails skipped, not fatal).
        committed = 0
        for path in run_dirs[0].glob("*.jsonl"):
            summary = checkpoint_mod.scan_sweep(path)
            committed += summary["tasks_committed"]
            reread = checkpoint_mod.SweepCheckpoint(path)
            reread.close()
        assert committed >= 1
        # Resume completes the run; its metrics match a clean serial run
        # bit for bit.
        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "fig6",
             "--benchmarks", "gzip,mcf,mesa,art", "--window", "8000",
             "--jobs", "2", "--executor", "local",
             "--checkpoint", str(ckpt_dir), "--resume", run_id,
             "--metrics", str(tmp_path / "resumed.json")],
            env=env, cwd=tmp_path, capture_output=True, text=True,
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        clean = subprocess.run(
            [sys.executable, "-m", "repro", "fig6",
             "--benchmarks", "gzip,mcf,mesa,art", "--window", "8000",
             "--jobs", "1",
             "--metrics", str(tmp_path / "clean.json")],
            env=env, cwd=tmp_path, capture_output=True, text=True,
            timeout=300,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert _manifest_counters(tmp_path / "resumed.json") \
            == _manifest_counters(tmp_path / "clean.json")
        # The IPC tables themselves must agree too.
        table = [l for l in resumed.stdout.splitlines() if "gzip" in l]
        assert table and table == [
            l for l in clean.stdout.splitlines() if "gzip" in l
        ]

    def test_sigterm_drains_exits_143_and_partial_report_renders(
            self, tmp_path):
        env = _cli_env(tmp_path)
        proc, ckpt_dir, trace = _spawn_fig6(
            tmp_path, env, "--executor", "socket", "--window", "20000"
        )
        try:
            _wait_for_task_done(trace)
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=120)
        except BaseException:
            proc.kill()
            proc.wait(timeout=30)
            raise
        output = stdout + stderr
        assert proc.returncode == 143, output
        assert "resume with" in output
        run_dirs = [p for p in ckpt_dir.iterdir() if p.is_dir()]
        assert len(run_dirs) == 1
        run_id = run_dirs[0].name
        events_text = trace.read_text()
        assert '"sweep_draining"' in events_text
        assert '"run_drained"' in events_text
        # The partial report renders from the drained checkpoint.
        report = subprocess.run(
            [sys.executable, "-m", "repro", "report",
             "--partial", run_id, "--checkpoint", str(ckpt_dir),
             "--out", str(tmp_path / "out")],
            env=env, cwd=tmp_path, capture_output=True, text=True,
            timeout=120,
        )
        assert report.returncode == 0, report.stdout + report.stderr
        partial_md = (tmp_path / "out" / "results_partial.md").read_text()
        assert "PARTIAL" in partial_md
        # And --resume completes the interrupted run.
        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "fig6",
             "--benchmarks", "gzip,mcf,mesa,art", "--window", "20000",
             "--jobs", "2", "--executor", "socket",
             "--checkpoint", str(ckpt_dir), "--resume", run_id],
            env=env, cwd=tmp_path, capture_output=True, text=True,
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert "gzip" in resumed.stdout
