"""Leakage-temperature feedback and DTM."""

import pytest

from repro.common.config import ChipModel
from repro.experiments.thermal import standard_floorplan
from repro.thermal.dtm import DtmController
from repro.thermal.hotspot import ChipThermalModel
from repro.thermal.leakage import leakage_scale, solve_with_leakage_feedback


class TestLeakageScale:
    def test_reference_is_unity(self):
        assert leakage_scale(47.0) == pytest.approx(1.0)

    def test_doubles_every_25c(self):
        assert leakage_scale(72.0) == pytest.approx(2.0)
        assert leakage_scale(97.0) == pytest.approx(4.0)

    def test_cooling_reduces_leakage(self):
        assert leakage_scale(22.0) == pytest.approx(0.5)


class TestFeedback:
    @pytest.fixture(scope="class")
    def result(self):
        plan = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0)
        return solve_with_leakage_feedback(ChipThermalModel(plan))

    def test_converges(self, result):
        assert result.iterations < 10

    def test_feedback_adds_leakage(self, result):
        assert result.extra_leakage_w > 0.0

    def test_papers_negligibility_claim(self, result):
        """Section 3.2: the impact of temperature on cache leakage is
        negligible — a ~2 degree shift on a ~35 degree rise here (small;
        the paper's cooler banks made it smaller still)."""
        assert 0.0 <= result.peak_delta_c < 3.0

    def test_feedback_heats_not_cools(self, result):
        assert result.peak_delta_c >= 0.0


class TestDtm:
    def test_no_emergency_above_peak(self):
        plan = standard_floorplan(ChipModel.TWO_D_A)
        controller = DtmController(plan, trigger_c=150.0)
        result = controller.steady_state()
        assert not result.emergency
        assert result.frequency_fraction == 1.0

    def test_emergency_throttles(self):
        plan = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=15.0)
        controller = DtmController(plan, trigger_c=80.0)
        result = controller.steady_state()
        assert result.emergency
        assert result.frequency_fraction < 1.0
        assert result.throttled_peak_c <= 80.3
        assert 0.0 < result.performance_cost < 0.7

    def test_lower_trigger_throttles_harder(self):
        plan = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=15.0)
        mild = DtmController(plan, trigger_c=84.0).steady_state()
        harsh = DtmController(plan, trigger_c=78.0).steady_state()
        assert harsh.frequency_fraction < mild.frequency_fraction
