"""Experiment drivers: fast (analytical) experiments at full fidelity,
simulation-backed drivers on reduced windows."""

import pytest

from repro.common.config import ChipModel, NucaPolicy
from repro.experiments import (
    SimulationWindow,
    constant_thermal_performance,
    fault_coverage_campaign,
    fig4_thermal_sweep,
    fig6_performance,
    fig7_frequency_histogram,
    fig8_ser_scaling,
    fig9_mbu_curve,
    nuca_policy_comparison,
    section34_wire_analysis,
    section4_heterogeneous,
    simulate_leading,
    simulate_rmt,
    slack_comparison,
    standard_floorplan,
    table4_bandwidth,
    table5_pipeline_power,
    table6_variability,
    table7_devices,
    table8_power_ratios,
    thermally_equivalent_frequency,
    via_summary,
)
from repro.workloads.profiles import get_profile

TINY = SimulationWindow(warmup=2000, measured=6000)
SUBSET = [get_profile(n) for n in ("gzip", "mcf", "mesa")]


class TestRunners:
    def test_simulate_leading(self):
        result = simulate_leading("gzip", ChipModel.TWO_D_A, window=TINY)
        assert 0.3 < result.ipc <= 4.0
        assert result.instructions == TINY.measured

    def test_simulate_rmt(self):
        result = simulate_rmt("gzip", ChipModel.THREE_D_2A, window=TINY)
        assert result.checker_instructions == TINY.total
        assert sum(result.frequency_residency.values()) == pytest.approx(1.0)

    def test_policies_give_different_hierarchies(self):
        a = simulate_leading(
            "mcf", ChipModel.TWO_D_A, window=TINY, policy=NucaPolicy.DISTRIBUTED_SETS
        )
        b = simulate_leading(
            "mcf", ChipModel.TWO_D_A, window=TINY, policy=NucaPolicy.DISTRIBUTED_WAYS
        )
        assert a.ipc != b.ipc


class TestTables:
    def test_table4(self):
        rows = table4_bandwidth()
        assert sum(r.width_bits for r in rows) == 1409

    def test_table5(self):
        rows = table5_pipeline_power()
        assert rows[0].published_dynamic == 1.0
        assert rows[-1].fo4_per_stage == 6

    def test_table6(self):
        rows = table6_variability()
        assert len(rows) == 4

    def test_table7(self):
        assert {r["feature_nm"] for r in table7_devices()} == {90, 65, 45}

    def test_table8(self):
        for row in table8_power_ratios():
            assert row.dynamic_derived == pytest.approx(
                row.dynamic_published, abs=0.02
            )

    def test_via_summary(self):
        summary = via_summary()
        assert summary.num_vias == 1409
        assert summary.total_area_mm2 == pytest.approx(0.07, abs=0.002)


class TestFigures:
    def test_fig8_total_rises(self):
        rows = fig8_ser_scaling()
        totals = [r["chip_relative"] for r in rows]
        assert totals == sorted(totals)

    def test_fig9_monotone(self):
        rows = fig9_mbu_curve()
        probs = [r["mbu_probability"] for r in rows]
        assert probs == sorted(probs)

    def test_fig4_shape(self):
        rows = fig4_thermal_sweep(checker_powers_w=(7, 15))
        assert rows[0].delta_3d_vs_2da > 0
        assert rows[1].delta_3d_vs_2da > rows[0].delta_3d_vs_2da

    def test_fig6_reduced(self):
        rows = fig6_performance(
            window=TINY, benchmarks=SUBSET,
            models=(ChipModel.TWO_D_A, ChipModel.TWO_D_2A),
        )
        assert len(rows) == 3
        for row in rows:
            assert row[ChipModel.TWO_D_A] > 0

    def test_fig7_reduced(self):
        result = fig7_frequency_histogram(window=TINY, benchmarks=SUBSET)
        assert sum(result.fractions.values()) == pytest.approx(1.0)
        assert 0.1 <= result.mean <= 1.0


class TestSectionAnalyses:
    def test_wire_analysis_ordering(self):
        budgets = section34_wire_analysis()
        assert (
            budgets["2d-a"].total_power_w
            < budgets["3d-2a"].total_power_w
            < budgets["2d-2a"].total_power_w
        )

    def test_slack_comparison(self):
        result = slack_comparison()
        assert result["deep_pipeline_power"] > 3.0
        assert result["dfs_error_rate"] < result["full_speed_error_rate"]

    def test_coverage_campaign(self):
        result = fault_coverage_campaign(instructions=5000, seed=2)
        assert result.architecturally_safe

    def test_thermal_constraint_frequency(self):
        ratio = thermally_equivalent_frequency(7.0)
        assert 0.8 < ratio < 1.0

    def test_constant_thermal_performance_reduced(self):
        result = constant_thermal_performance(
            checker_power_w=7.0, window=TINY, benchmarks=SUBSET
        )
        assert 0.0 < result.performance_loss < 0.15
        assert result.frequency_ghz < 2.0

    @pytest.mark.slow
    def test_section4_heterogeneous_reduced(self):
        result = section4_heterogeneous(window=TINY, benchmarks=SUBSET)
        assert result.checker_power_90nm_w > result.checker_power_65nm_w
        assert result.upper_cache_banks_90nm == 5
        assert result.peak_frequency_ratio == pytest.approx(0.7)
        assert result.bank_access_cycles_90nm == 7
        assert result.soft_error_rate_ratio < 1.0
        assert abs(result.leading_slowdown) < 0.1


class TestStandardFloorplan:
    def test_wire_power_attached(self):
        plan = standard_floorplan(ChipModel.TWO_D_A)
        assert plan.distributed_power_w[0] == pytest.approx(5.4, abs=0.5)
