"""ASCII visualization helpers."""

import numpy as np
import pytest

from repro.common.config import ChipModel
from repro.floorplan.layouts import build_floorplan
from repro.viz import bar_chart, floorplan_map, heatmap


class TestHeatmap:
    def test_shape(self):
        grid = np.random.default_rng(1).random((50, 50))
        text = heatmap(grid, width=40, height=20)
        lines = text.splitlines()
        assert len(lines) == 21  # 20 rows + legend
        assert all(len(line) == 40 for line in lines[:20])

    def test_hot_cell_uses_densest_glyph(self):
        grid = np.zeros((10, 10))
        grid[5, 5] = 100.0
        text = heatmap(grid, width=10, height=10, legend=False)
        assert "@" in text

    def test_uniform_field(self):
        text = heatmap(np.full((5, 5), 3.0), width=5, height=5, legend=False)
        assert len(set(text.replace("\n", ""))) == 1

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(5))

    def test_explicit_range(self):
        grid = np.full((4, 4), 50.0)
        text = heatmap(grid, vmin=0.0, vmax=100.0, legend=True)
        assert "0.0" in text and "100.0" in text


class TestFloorplanMap:
    def test_renders_all_blocks(self):
        plan = build_floorplan(ChipModel.TWO_D_A)
        text = floorplan_map(plan, die=0)
        for block in plan.die_blocks(0):
            assert block.name in text

    def test_upper_die(self):
        plan = build_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0)
        text = floorplan_map(plan, die=1)
        assert "checker" in text

    def test_empty_die_rejected(self):
        plan = build_floorplan(ChipModel.TWO_D_A)
        with pytest.raises(ValueError):
            floorplan_map(plan, die=1)

    def test_core_at_bottom(self):
        """The core strip (y=0) must render at the bottom of the map."""
        plan = build_floorplan(ChipModel.TWO_D_A)
        text = floorplan_map(plan, die=0, width=30, height=12)
        rows = text.splitlines()[:12]
        legend_letter = None
        for line in text.splitlines():
            if "= icache" in line:
                legend_letter = line.split("=")[0].strip()
        assert legend_letter is not None
        assert legend_letter in rows[-1]     # bottom row
        assert legend_letter not in rows[0]  # not the top row


class TestBarChart:
    def test_bars_scale(self):
        text = bar_chart({"a": 0.5, "b": 1.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_zero_values(self):
        text = bar_chart({"x": 0.0}, width=10)
        assert "#" not in text
