"""Pluggable executor backends and the backend-agnostic scheduler.

Covers backend selection precedence, per-backend equivalence to the
serial path, socket-worker loss and heartbeat supervision (requeue onto
survivors, no pool-level restart), transport chaos (duplicated and
delayed result frames), the degradation chain, the at-most-once result
commit (including a hypothesis interleaving property), the no-SIGALRM
timeout fallback, truncated-checkpoint recovery, and gc hardening.
"""

import dataclasses
import json
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import memo
from repro.common.errors import ConfigError, WorkerCrashError
from repro.experiments import chaos as chaos_mod
from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments import engine
from repro.experiments import executors as executors_mod
from repro.experiments.chaos import ChaosPolicy
from repro.experiments.engine import TaskPolicy, run_sweep
from repro.experiments.executors import (
    InlineExecutor,
    LocalPoolExecutor,
    SocketExecutor,
    make_executor,
    resolve_executor,
    set_default_executor,
)
from repro.experiments.perf import fig6_performance
from repro.experiments.runner import SimulationWindow
from repro.obs import events, metrics
from repro.obs.metrics import MetricsSnapshot, merge_snapshots
from repro.obs.tracing import span_structure
from repro.workloads.profiles import get_profile

TINY = SimulationWindow(warmup=2000, measured=6000)


@pytest.fixture(autouse=True)
def _clean_engine():
    engine.clear_timings()
    engine.set_default_policy(None)
    set_default_executor(None)
    chaos_mod.set_chaos(None)
    checkpoint_mod.set_checkpoint_dir(None)
    yield
    engine.clear_timings()
    engine.set_default_policy(None)
    set_default_executor(None)
    chaos_mod.set_chaos(None)
    checkpoint_mod.set_checkpoint_dir(None)


# -- module-level worker functions (must pickle into workers) -----------

def _double(x):
    return x * 2


def _bump_delta(x):
    m = metrics.get_registry()
    m.counter("exectest.calls").inc()
    m.histogram("exectest.values", (2.0, 5.0)).observe(min(x, 9))
    return x + 1


def _slow_bump(x):
    # Long enough that a chunk of three outlives the socket backend's
    # heartbeat timeout (6 x 0.25s), so a muted worker is detectable.
    time.sleep(0.65)
    return _bump_delta(x)


def _sleepy_once(item):
    value, marker = item
    path = Path(marker)
    if not path.exists():
        path.write_text("attempted")
        time.sleep(0.5)
    return value * 2


# ---------------------------------------------------------------------
class TestSelection:
    def test_precedence_argument_default_env_auto(self, monkeypatch):
        monkeypatch.delenv(executors_mod.EXECUTOR_ENV_VAR, raising=False)
        assert resolve_executor(None, 1) == "inline"
        assert resolve_executor(None, 4) == "local"
        monkeypatch.setenv(executors_mod.EXECUTOR_ENV_VAR, "socket")
        assert resolve_executor(None, 1) == "socket"
        set_default_executor("local")
        assert resolve_executor(None, 1) == "local"   # default beats env
        assert resolve_executor("inline", 8) == "inline"  # arg beats all

    def test_unknown_names_raise(self, monkeypatch):
        with pytest.raises(ConfigError):
            resolve_executor("carrier-pigeon", 2)
        with pytest.raises(ConfigError):
            set_default_executor("carrier-pigeon")
        with pytest.raises(ConfigError):
            make_executor("carrier-pigeon", fn=_double,
                          policy=TaskPolicy(), chaos=None)
        monkeypatch.setenv(executors_mod.EXECUTOR_ENV_VAR, "quantum")
        with pytest.raises(ConfigError):
            resolve_executor(None, 2)

    def test_make_executor_builds_the_named_backend(self):
        context = dict(fn=_double, policy=TaskPolicy(), chaos=None)
        assert isinstance(make_executor("inline", **context), InlineExecutor)
        assert isinstance(make_executor("local", **context), LocalPoolExecutor)
        sock = make_executor("socket", **context)
        try:
            assert isinstance(sock, SocketExecutor)
        finally:
            sock.shutdown(kill=True)

    def test_sweep_records_backend_name(self):
        _results, timing = run_sweep(_double, [1, 2], jobs=1)
        assert timing.executor == "inline"
        assert timing.backends == ["inline"]


class TestTransportChaosParse:
    def test_parse_round_trip(self):
        policy = ChaosPolicy.parse(
            "heartbeat-drop:0.2,result-dup:0.1,result-delay:0.3:0.02,seed:7"
        )
        assert policy.hb_drop_p == 0.2
        assert policy.dup_result_p == 0.1
        assert policy.frame_delay_p == 0.3
        assert policy.frame_delay_s == 0.02
        assert ChaosPolicy.parse("hb-drop:0.5").hb_drop_p == 0.5
        assert ChaosPolicy.parse("dup:0.5").dup_result_p == 0.5

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChaosPolicy(hb_drop_p=1.5)
        with pytest.raises(ConfigError):
            ChaosPolicy(dup_result_p=-0.1)
        with pytest.raises(ConfigError):
            ChaosPolicy(frame_delay_s=-1.0)

    def test_transport_faults_only_disturb_first_attempts(self):
        policy = ChaosPolicy(hb_drop_p=1.0, dup_result_p=1.0,
                             frame_delay_p=1.0)
        assert policy.drops_heartbeat(0, 0)
        assert policy.duplicates_result(0, 0)
        assert policy.delays_result(0, 0)
        assert not policy.drops_heartbeat(0, 1)
        assert not policy.duplicates_result(0, 1)
        assert not policy.delays_result(0, 1)


# ---------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["inline", "local", "socket"])
    def test_results_and_metrics_match_serial(self, backend):
        clean, clean_t = run_sweep(_bump_delta, list(range(6)), jobs=1,
                                   record=False)
        got, timing = run_sweep(
            _bump_delta, list(range(6)), jobs=2, chunksize=2,
            executor=backend, record=False,
        )
        assert got == clean
        assert timing.executor == backend
        assert timing.metrics.counters == clean_t.metrics.counters
        assert timing.metrics.histograms == clean_t.metrics.histograms


# ---------------------------------------------------------------------
class TestSocketResilience:
    def test_worker_kill_requeues_without_pool_restart(self):
        # A chaos kill in exactly one chunk: the victim's chunk must
        # requeue onto the surviving worker — no backend restart, no
        # degradation — and still match the undisturbed serial run.
        seed = next(
            s for s in range(500)
            if any(ChaosPolicy(kill_p=0.3, seed=s).kills(i, 0)
                   for i in range(0, 3))
            and not any(ChaosPolicy(kill_p=0.3, seed=s).kills(i, 0)
                        for i in range(3, 6))
        )
        clean, clean_t = run_sweep(_bump_delta, list(range(6)), jobs=1,
                                   record=False)
        got, timing = run_sweep(
            _bump_delta, list(range(6)), jobs=2, chunksize=3,
            executor="socket", record=False,
            chaos=ChaosPolicy(kill_p=0.3, seed=seed),
        )
        assert got == clean
        assert timing.lost_workers >= 1
        assert timing.requeues >= 1
        assert timing.pool_rebuilds == 0
        assert not timing.degraded
        assert timing.failures == 0
        assert timing.metrics.counters == clean_t.metrics.counters
        assert timing.metrics.histograms == clean_t.metrics.histograms

    def test_heartbeat_drop_is_detected_and_requeued(self):
        # One chunk mutes its worker's heartbeats; the chunk is slow
        # enough (3 x 0.65s > the 1.5s heartbeat timeout) that the
        # controller declares the worker lost mid-chunk and requeues
        # onto the survivor.  Results the muted worker already streamed
        # race the rerun's copies — the at-most-once commit keeps them
        # single-counted.
        seed = next(
            s for s in range(500)
            if ChaosPolicy(hb_drop_p=0.5, seed=s).drops_heartbeat(0, 0)
            and not ChaosPolicy(hb_drop_p=0.5, seed=s).drops_heartbeat(3, 0)
        )
        clean, clean_t = run_sweep(_slow_bump, list(range(6)), jobs=1,
                                   record=False)
        got, timing = run_sweep(
            _slow_bump, list(range(6)), jobs=2, chunksize=3,
            executor="socket", record=False,
            chaos=ChaosPolicy(hb_drop_p=0.5, seed=seed),
        )
        assert got == clean
        assert timing.lost_workers >= 1
        assert timing.requeues >= 1
        assert timing.pool_rebuilds == 0
        assert not timing.degraded
        assert timing.metrics.counters == clean_t.metrics.counters
        assert timing.metrics.histograms == clean_t.metrics.histograms

    def test_duplicated_and_delayed_result_frames_commit_once(self):
        clean, clean_t = run_sweep(_bump_delta, list(range(6)), jobs=1,
                                   record=False)
        got, timing = run_sweep(
            _bump_delta, list(range(6)), jobs=2, chunksize=3,
            executor="socket", record=False,
            chaos=ChaosPolicy(dup_result_p=1.0, frame_delay_p=1.0,
                              frame_delay_s=0.01),
        )
        assert got == clean
        assert timing.duplicate_results == 6
        assert timing.failures == 0
        assert timing.metrics.counters == clean_t.metrics.counters
        assert timing.metrics.histograms == clean_t.metrics.histograms

    def test_losing_every_worker_degrades_down_the_chain(self):
        # kill_p=1.0 takes out each socket worker on its first chunk;
        # once none is left the backend raises and the scheduler hands
        # the unfinished chunks to the local pool, which finishes.
        clean, _ = run_sweep(_double, [1, 2, 3, 4], jobs=1, record=False)
        got, timing = run_sweep(
            _double, [1, 2, 3, 4], jobs=2, chunksize=1,
            executor="socket", record=False,
            chaos=ChaosPolicy(kill_p=1.0),
            policy=TaskPolicy(max_respawns=0),
        )
        assert got == clean
        assert timing.degraded
        assert timing.backends[0] == "socket"
        assert "local" in timing.backends
        assert timing.lost_workers >= 2
        assert timing.failures == 0

    def test_degradation_disabled_raises_worker_crash(self):
        with pytest.raises(WorkerCrashError):
            run_sweep(
                _double, [1, 2, 3, 4], jobs=2, chunksize=1,
                executor="socket", record=False,
                chaos=ChaosPolicy(kill_p=1.0),
                policy=TaskPolicy(degrade_serial=False, max_respawns=0),
            )


# ---------------------------------------------------------------------
def _schema_ok(heartbeat: dict) -> bool:
    """Every backend's heartbeat() speaks the same documented schema."""
    for worker, info in heartbeat.items():
        assert isinstance(worker, str)
        assert info["worker"] == worker
        assert isinstance(info["age_s"], float) and info["age_s"] >= 0.0
        assert info["inflight_chunk"] is None \
            or isinstance(info["inflight_chunk"], int)
    return True


class TestHeartbeatSchema:
    def test_inline_reports_itself(self):
        ex = make_executor("inline", fn=_double, policy=TaskPolicy(),
                           chaos=None)
        assert _schema_ok(ex.heartbeat())
        assert ex.heartbeat()["inline"]["inflight_chunk"] is None
        ex.submit_chunk(7, [(0, 0, 1), (1, 0, 2)])
        ex.poll()       # one task per poll: the chunk is now current
        assert _schema_ok(ex.heartbeat())
        assert ex.heartbeat()["inline"]["inflight_chunk"] == 7
        ex.poll()       # second task drains the chunk
        assert ex.heartbeat()["inline"]["inflight_chunk"] is None
        ex.shutdown()

    def test_local_reports_pool_pids(self):
        ex = make_executor("local", fn=_double, policy=TaskPolicy(),
                           chaos=None, jobs=2)
        assert ex.heartbeat() == {}     # pool not built yet
        try:
            ex.submit_chunk(0, [(0, 0, 1)])
            deadline = time.monotonic() + 10.0
            heartbeat = {}
            while time.monotonic() < deadline and not heartbeat:
                ex.poll(timeout_s=0.1)
                heartbeat = ex.heartbeat()
            assert heartbeat
            assert _schema_ok(heartbeat)
            for worker, info in heartbeat.items():
                assert worker == str(int(worker))   # OS pids
                assert info["age_s"] == 0.0         # liveness is implicit
        finally:
            ex.shutdown(kill=True)

    def test_socket_reports_ages_and_progress(self):
        ex = make_executor("socket", fn=_slow_bump, policy=TaskPolicy(),
                           chaos=None, jobs=2)
        try:
            ex.submit_chunk(0, [(0, 0, 1), (1, 0, 2)])
            deadline = time.monotonic() + 15.0
            seen_inflight = None
            events_: list = []
            while time.monotonic() < deadline:
                events_.extend(ex.poll(timeout_s=0.1))
                heartbeat = ex.heartbeat()
                if heartbeat:
                    assert _schema_ok(heartbeat)
                busy = [info for info in heartbeat.values()
                        if info["inflight_chunk"] is not None]
                if busy:
                    seen_inflight = busy[0]
                if any(isinstance(e, executors_mod.ChunkDone)
                       for e in events_):
                    break
            assert seen_inflight is not None
            assert seen_inflight["inflight_chunk"] == 0
            # The socket backend adds self-reported chunk progress.
            assert "tasks_done" in seen_inflight
        finally:
            ex.shutdown(kill=True)


# ---------------------------------------------------------------------
class TestFig6AcrossBackends:
    """The PR's acceptance criterion: fig6 on every backend under
    combined transport chaos is bit-identical to a clean serial run."""

    _clean: dict = {}

    @classmethod
    def _clean_run(cls):
        if not cls._clean:
            benchmarks = [get_profile(n) for n in ("gzip", "mcf")]
            memo.clear_cache()
            run = events.begin_run("fig6-exec-clean")
            rows = fig6_performance(window=TINY, benchmarks=benchmarks,
                                    jobs=1)
            cls._clean["rows"] = [dataclasses.asdict(r) for r in rows]
            cls._clean["metrics"] = engine.run_metrics(run)
        return cls._clean["rows"], cls._clean["metrics"]

    @pytest.mark.parametrize("backend", ["inline", "local", "socket"])
    def test_transport_chaos_is_bit_identical_to_serial(self, backend):
        benchmarks = [get_profile(n) for n in ("gzip", "mcf")]
        n_tasks = len(benchmarks) * 4
        seed = next(
            s for s in range(500)
            if any(ChaosPolicy(kill_p=0.15, seed=s).kills(i, 0)
                   for i in range(n_tasks))
            and any(ChaosPolicy(dup_result_p=0.5, seed=s)
                    .duplicates_result(i, 0) for i in range(n_tasks))
        )
        chaos = ChaosPolicy(
            kill_p=0.15, hb_drop_p=0.2, dup_result_p=0.5,
            frame_delay_p=0.3, frame_delay_s=0.01, seed=seed,
        )
        clean_rows, clean_metrics = self._clean_run()

        memo.clear_cache()
        chaos_mod.set_chaos(chaos)
        engine.set_default_policy(TaskPolicy(max_retries=2))
        engine.set_default_executor(backend)
        run = events.begin_run(f"fig6-exec-{backend}")
        noisy = fig6_performance(window=TINY, benchmarks=benchmarks, jobs=2)
        noisy_metrics = engine.run_metrics(run)
        timing = engine.timings(run)[-1]

        assert timing.failures == 0
        assert [dataclasses.asdict(r) for r in noisy] == clean_rows
        assert noisy_metrics.counters == clean_metrics.counters
        assert noisy_metrics.histograms == clean_metrics.histograms
        assert noisy_metrics.gauges == clean_metrics.gauges
        assert span_structure(noisy_metrics.spans) == span_structure(
            clean_metrics.spans
        )


# ---------------------------------------------------------------------
@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    n=st.integers(1, 8),
    order=st.lists(st.integers(0, 7), max_size=30),
)
def test_any_result_interleaving_commits_at_most_once(n, order):
    """Property: whatever interleaving of late, duplicated, or lost
    chunk results reaches the scheduler, every task key commits exactly
    once (first delivery wins) and the merged metrics equal those of a
    single clean delivery per task."""
    tasks = list(range(n))
    timing = engine.SweepTiming(label="interleave", jobs=1)
    state = engine._SweepState(
        tasks, "interleave", TaskPolicy(fail_fast=False), timing, None,
    )
    deliveries = [i % n for i in order]
    for serial, i in enumerate(deliveries):
        # Duplicate deliveries of a committed key carry a *different*
        # payload, so a second commit would be visible in the results.
        state.absorb(engine._TaskOutcome(
            index=i, ok=True, result=(i, serial), wall_s=0.001,
            metrics=MetricsSnapshot(counters={f"task.{i}": 1}),
            attempts=1,
        ))
    first_delivery = {}
    for serial, i in enumerate(deliveries):
        first_delivery.setdefault(i, serial)
    for i in range(n):
        if i in first_delivery:
            assert state.results[i] == (i, first_delivery[i])
        else:
            assert state.results[i] is None        # lost, never committed
    assert timing.duplicate_results == len(deliveries) - len(first_delivery)
    merged = merge_snapshots(s for s in state.snapshots if s is not None)
    assert merged.counters == {
        f"task.{i}": 1 for i in sorted(first_delivery)
    }


# ---------------------------------------------------------------------
class TestAlarmFallback:
    def test_overlong_finished_attempt_counts_as_timeout(self, monkeypatch,
                                                         tmp_path):
        # Without SIGALRM the deadline cannot interrupt the attempt, but
        # an attempt that *finishes* overlong is still discarded and
        # retried — same accounting as a fired alarm.
        monkeypatch.setattr(executors_mod, "_HAS_ALARM", False)
        assert not executors_mod._alarm_usable()
        items = [(i, str(tmp_path / f"m{i}")) for i in range(2)]
        results, timing = run_sweep(
            _sleepy_once, items, jobs=1,
            policy=TaskPolicy(timeout_s=0.2, max_retries=1),
        )
        assert results == [0, 2]
        assert timing.timeouts == 2
        assert timing.retries == 2
        assert timing.failures == 0

    def test_deadline_is_a_noop_without_alarm(self, monkeypatch):
        monkeypatch.setattr(executors_mod, "_HAS_ALARM", False)
        with executors_mod._deadline(0.01):
            time.sleep(0.05)      # would raise if the timer were armed


# ---------------------------------------------------------------------
def _record_call(item):
    value, marker = item
    with open(marker, "a") as fh:
        fh.write("x")
    return value * 3


class TestCheckpointTruncation:
    def test_garbage_line_is_skipped_with_event(self, tmp_path):
        checkpoint_mod.set_checkpoint_dir(tmp_path / "ck")
        run_id = events.begin_run("ckpt-garbage")
        items = [(i, str(tmp_path / f"calls-{i}")) for i in range(3)]
        run_sweep(_record_call, items, jobs=1, chunksize=1, label="g")
        ckpt_file = tmp_path / "ck" / run_id / "g.jsonl"
        lines = ckpt_file.read_text().splitlines()
        lines[1] = '{"corrupt": '             # torn mid-write
        ckpt_file.write_text("\n".join(lines) + "\n")
        for _value, marker in items:
            Path(marker).unlink()
        sink = tmp_path / "events.jsonl"
        events.set_sink(sink)
        try:
            results, timing = run_sweep(_record_call, items, jobs=1,
                                        chunksize=1, label="g")
        finally:
            events.set_sink(None)
        assert results == [0, 3, 6]
        assert timing.resumed_tasks == 2     # only the torn task re-ran
        assert (tmp_path / "calls-1").exists()
        assert not (tmp_path / "calls-0").exists()
        recorded = [json.loads(line) for line in
                    sink.read_text().splitlines()]
        truncated = [r for r in recorded
                     if r["event"] == "checkpoint_truncated"]
        assert truncated and truncated[0]["skipped_lines"] == 1

    def test_undecodable_payload_reruns_the_task(self, tmp_path):
        checkpoint_mod.set_checkpoint_dir(tmp_path / "ck")
        run_id = events.begin_run("ckpt-payload")
        items = [(i, str(tmp_path / f"calls-{i}")) for i in range(2)]
        run_sweep(_record_call, items, jobs=1, chunksize=1, label="p")
        ckpt_file = tmp_path / "ck" / run_id / "p.jsonl"
        lines = ckpt_file.read_text().splitlines()
        record = json.loads(lines[0])
        record["result"] = "!!not-base64!!"
        lines[0] = json.dumps(record)
        ckpt_file.write_text("\n".join(lines) + "\n")
        for _value, marker in items:
            Path(marker).unlink()
        results, timing = run_sweep(_record_call, items, jobs=1,
                                    chunksize=1, label="p")
        assert results == [0, 3]
        assert timing.resumed_tasks == 1
        assert (tmp_path / "calls-0").exists()   # re-ran
        assert not (tmp_path / "calls-1").exists()


class TestGcHardening:
    def test_unreadable_run_dir_is_skipped(self, tmp_path, monkeypatch):
        for name in ("run-a", "run-b"):
            run = tmp_path / name
            run.mkdir()
            (run / "sweep.jsonl").write_text("x" * 50)
        real_mtime = checkpoint_mod._run_mtime

        def _flaky_mtime(run_dir):
            if run_dir.name == "run-a":
                raise OSError("permission denied")
            return real_mtime(run_dir)

        monkeypatch.setattr(checkpoint_mod, "_run_mtime", _flaky_mtime)
        report = checkpoint_mod.gc_checkpoints(tmp_path, keep_last=0,
                                               dry_run=True)
        assert report.skipped == ["run-a"]
        assert report.removed == ["run-b"]
        assert report.reclaimed_bytes == 50
        assert report.reclaimed_files == 1
        assert (tmp_path / "run-a").exists()

    def test_dry_run_reports_bytes_and_file_counts(self, tmp_path):
        run = tmp_path / "run-a"
        run.mkdir()
        (run / "one.jsonl").write_text("x" * 30)
        (run / "two.jsonl").write_text("y" * 20)
        report = checkpoint_mod.gc_checkpoints(tmp_path, keep_last=0,
                                               dry_run=True)
        assert report.dry_run
        assert report.reclaimed_bytes == 50
        assert report.reclaimed_files == 2
        assert run.exists()
