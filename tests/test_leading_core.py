"""The out-of-order leading core timing model."""

import pytest

from repro.common.config import ChipModel, LeadingCoreConfig, NucaConfig
from repro.core.leading import LeadingCoreTiming
from repro.core.memory import MemoryHierarchy
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import generate_trace
from repro.workloads.profiles import get_profile


def make_core(config=None, chip=ChipModel.TWO_D_A):
    config = config or LeadingCoreConfig()
    memory = MemoryHierarchy(config, NucaConfig(num_banks=chip.l2_banks), chip)
    return LeadingCoreTiming(config, memory)


def independent_alu_ops(n, start=0):
    # Far register (30) sources: never a dependence.  All instructions
    # share one I-cache line so fetch never misses.
    return [
        Instruction(start + i, OpClass.IALU, dst=i % 28, src1=30, src2=30, pc=0)
        for i in range(n)
    ]


def chained_alu_ops(n):
    instrs = []
    for i in range(n):
        src = (i - 1) % 28 if i else 30
        instrs.append(
            Instruction(i, OpClass.IALU, dst=i % 28, src1=src, src2=30, pc=0)
        )
    return instrs


class TestThroughputBounds:
    def test_independent_ops_reach_high_ipc(self):
        core = make_core()
        result = core.run(independent_alu_ops(4000))
        assert result.ipc > 3.0

    def test_ipc_never_exceeds_width(self):
        core = make_core()
        result = core.run(independent_alu_ops(4000))
        assert result.ipc <= 4.0 + 1e-9

    def test_dependence_chain_serializes(self):
        core = make_core()
        result = core.run(chained_alu_ops(4000))
        assert result.ipc == pytest.approx(1.0, abs=0.1)

    def test_fp_units_bound_fp_throughput(self):
        # Only one FP ALU: dense FALU streams run at ~1 per cycle.
        core = make_core()
        instrs = [
            Instruction(i, OpClass.FALU, dst=32 + i % 28, src1=62, src2=62, pc=0)
            for i in range(3000)
        ]
        result = core.run(instrs)
        assert result.ipc == pytest.approx(1.0, abs=0.15)


class TestMemoryBehaviour:
    def test_l2_miss_stalls_more_than_hit(self):
        profile = get_profile("mcf")
        config = LeadingCoreConfig()

        def run(preload):
            memory = MemoryHierarchy(config, NucaConfig(num_banks=6), ChipModel.TWO_D_A)
            if preload:
                memory.preload_profile(profile)
            core = LeadingCoreTiming(config, memory)
            return core.run(generate_trace(profile, 15_000, seed=3))

        assert run(preload=True).ipc > run(preload=False).ipc

    def test_memory_latency_config_matters(self):
        profile = get_profile("mcf")
        slow = LeadingCoreConfig(memory_latency_cycles=600)
        fast = LeadingCoreConfig(memory_latency_cycles=100)

        def run(cfg):
            memory = MemoryHierarchy(cfg, NucaConfig(num_banks=6), ChipModel.TWO_D_A)
            memory.preload_profile(profile)
            return LeadingCoreTiming(cfg, memory).run(
                generate_trace(profile, 15_000, seed=3)
            )

        assert run(fast).ipc > run(slow).ipc


class TestBranchCosts:
    def test_mispredicts_cost_cycles(self):
        def run(hard_fraction):
            import dataclasses
            profile = dataclasses.replace(
                get_profile("gzip"), hard_branch_fraction=hard_fraction
            )
            config = LeadingCoreConfig()
            memory = MemoryHierarchy(config, NucaConfig(num_banks=6), ChipModel.TWO_D_A)
            memory.preload_profile(profile)
            return LeadingCoreTiming(config, memory).run(
                generate_trace(profile, 15_000, seed=3)
            )

        assert run(0.0).ipc > run(0.3).ipc


class TestCommitGate:
    def test_gate_delays_commit(self):
        core = make_core()
        ungated = [core.schedule(i) for i in independent_alu_ops(100)]
        gated_core = make_core()
        instrs = independent_alu_ops(100)
        gated = [gated_core.schedule(i, commit_gate=500) for i in instrs]
        assert gated[0] >= 500
        assert ungated[0] < 500

    def test_commits_are_monotonic(self):
        core = make_core()
        commits = [core.schedule(i) for i in independent_alu_ops(500)]
        assert all(b >= a for a, b in zip(commits, commits[1:]))

    def test_commit_width_limit(self):
        core = make_core()
        commits = [core.schedule(i) for i in independent_alu_ops(400)]
        from collections import Counter
        per_cycle = Counter(commits)
        assert max(per_cycle.values()) <= 4


class TestMeasurementWindow:
    def test_warmup_excluded_from_stats(self):
        profile = get_profile("gzip")
        trace = generate_trace(profile, 20_000, seed=3)
        config = LeadingCoreConfig()
        memory = MemoryHierarchy(config, NucaConfig(num_banks=6), ChipModel.TWO_D_A)
        core = LeadingCoreTiming(config, memory)
        result = core.run(trace, warmup=10_000)
        assert result.instructions == 10_000
        # Warm measurement should beat a cold full-trace run's IPC.
        memory2 = MemoryHierarchy(config, NucaConfig(num_banks=6), ChipModel.TWO_D_A)
        cold = LeadingCoreTiming(config, memory2).run(
            generate_trace(profile, 20_000, seed=3)
        )
        assert result.ipc > cold.ipc

    def test_op_counts_accumulate(self):
        core = make_core()
        core.run(independent_alu_ops(100))
        result = core.result(100)
        assert result.op_counts["ialu"] == 100
