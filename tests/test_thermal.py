"""The thermal grid solver and chip-level thermal model."""

import numpy as np
import pytest

from repro.common.config import ChipModel, ThermalConfig
from repro.common.errors import ThermalModelError
from repro.floorplan.layouts import build_floorplan
from repro.thermal.grid import GridThermalModel
from repro.thermal.hotspot import ChipThermalModel, solve_floorplan
from repro.thermal.materials import Layer, stack_for_2d, stack_for_3d


def tiny_model(rows=10, cols=10, sink_r=10.0):
    layers = [
        Layer("base", 1e-3, 1.0 / 400.0),
        Layer("active", 1e-6, 0.01, has_power=True),
    ]
    return GridThermalModel(
        layers=layers, width_m=5e-3, height_m=5e-3, rows=rows, cols=cols,
        sink_r_k_mm2_per_w=sink_r, secondary_r_k_mm2_per_w=1e5, ambient_c=47.0,
    )


class TestGridSolver:
    def test_zero_power_is_ambient(self):
        model = tiny_model()
        temps = model.solve({"active": np.zeros((10, 10))})
        assert np.allclose(temps["active"], 47.0, atol=1e-6)

    def test_uniform_power_uniform_temperature(self):
        model = tiny_model()
        power = np.full((10, 10), 0.1)
        temps = model.solve({"active": power})["active"]
        assert temps.std() < 0.05 * (temps.mean() - 47.0)

    def test_uniform_power_matches_analytic(self):
        model = tiny_model()
        power = np.full((10, 10), 0.1)   # 10 W over 25 mm²
        temps = model.solve({"active": power})["active"]
        # 1D expectation: convection (10 K·mm²/W) in series with the 1 mm
        # copper base (1e-3 m x 1/400 (mK)/W = 2.5 K·mm²/W) over 25 mm².
        expected = 10.0 * (10.0 + 2.5) / 25.0
        assert temps.mean() - 47.0 == pytest.approx(expected, rel=0.05)

    def test_hotspot_is_hotter_than_surroundings(self):
        model = tiny_model()
        power = np.zeros((10, 10))
        power[5, 5] = 2.0
        temps = model.solve({"active": power})["active"]
        assert temps[5, 5] == temps.max()
        assert temps[0, 0] < temps[5, 5]

    def test_superposition(self):
        """The solver is linear: T(P1+P2) - Tamb = (T(P1)-Tamb) + (T(P2)-Tamb)."""
        model = tiny_model()
        p1 = np.zeros((10, 10)); p1[2, 2] = 1.0
        p2 = np.zeros((10, 10)); p2[7, 7] = 1.5
        t1 = model.solve({"active": p1})["active"] - 47.0
        t2 = model.solve({"active": p2})["active"] - 47.0
        t12 = model.solve({"active": p1 + p2})["active"] - 47.0
        assert np.allclose(t12, t1 + t2, atol=1e-8)

    def test_more_power_is_hotter_everywhere(self):
        model = tiny_model()
        p = np.full((10, 10), 0.05)
        t_low = model.solve({"active": p})["active"]
        t_high = model.solve({"active": 2 * p})["active"]
        assert np.all(t_high >= t_low - 1e-9)

    def test_power_on_non_power_layer_rejected(self):
        model = tiny_model()
        with pytest.raises(ThermalModelError):
            model.solve({"base": np.ones((10, 10))})

    def test_wrong_shape_rejected(self):
        model = tiny_model()
        with pytest.raises(ThermalModelError):
            model.solve({"active": np.ones((5, 5))})

    def test_negative_power_rejected(self):
        model = tiny_model()
        with pytest.raises(ThermalModelError):
            model.solve({"active": np.full((10, 10), -1.0)})

    def test_unknown_layer_rejected(self):
        model = tiny_model()
        with pytest.raises(KeyError):
            model.solve({"nope": np.ones((10, 10))})

    def test_duplicate_layer_names_rejected(self):
        layers = [
            Layer("base", 1e-3, 1.0 / 400.0),
            Layer("active", 1e-6, 0.01, has_power=True),
            Layer("active", 1e-6, 0.01, has_power=True),
        ]
        with pytest.raises(ThermalModelError, match="duplicate layer names"):
            GridThermalModel(
                layers=layers, width_m=5e-3, height_m=5e-3, rows=4, cols=4,
                sink_r_k_mm2_per_w=10.0, secondary_r_k_mm2_per_w=1e5,
                ambient_c=47.0,
            )


class TestStacks:
    def test_2d_stack_has_one_power_layer(self):
        layers = stack_for_2d(ThermalConfig())
        assert sum(1 for l in layers if l.has_power) == 1

    def test_3d_stack_has_two_power_layers(self):
        layers = stack_for_3d(ThermalConfig())
        assert sum(1 for l in layers if l.has_power) == 2

    def test_3d_stack_layer_order(self):
        names = [l.name for l in stack_for_3d(ThermalConfig())]
        assert names.index("active_1") < names.index("d2d_via") < names.index("active_2")

    def test_table3_thicknesses(self):
        cfg = ThermalConfig()
        layers = {l.name: l for l in stack_for_3d(cfg)}
        assert layers["active_1"].thickness_m == pytest.approx(1e-6)
        assert layers["d2d_via"].thickness_m == pytest.approx(10e-6)
        assert layers["bulk_si_2"].thickness_m == pytest.approx(20e-6)


class TestChipThermalModel:
    @pytest.fixture(scope="class")
    def base_result(self):
        return solve_floorplan(build_floorplan(ChipModel.TWO_D_A, wire_power_w=5.1))

    def test_peak_in_plausible_range(self, base_result):
        assert 60.0 < base_result.peak_c < 100.0

    def test_hottest_block_is_a_core_unit(self, base_result):
        assert base_result.hottest_block() in (
            "regfile", "int_exec", "rob", "rename",
        )

    def test_banks_cooler_than_core(self, base_result):
        assert base_result.block_peak_c["bank0"] < base_result.block_peak_c["regfile"]

    def test_block_mean_below_block_peak(self, base_result):
        for name in base_result.block_peak_c:
            assert base_result.block_mean_c[name] <= base_result.block_peak_c[name] + 1e-9

    def test_3d_stacking_raises_temperature(self, base_result):
        stacked = solve_floorplan(
            build_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0, wire_power_w=12.1)
        )
        assert stacked.peak_c > base_result.peak_c

    def test_checker_power_raises_3d_peak(self):
        def peak(p):
            return solve_floorplan(
                build_floorplan(ChipModel.THREE_D_2A, checker_power_w=p, wire_power_w=12.1)
            ).peak_c
        assert peak(25.0) > peak(15.0) > peak(2.0)

    def test_block_power_overrides(self):
        plan = build_floorplan(ChipModel.TWO_D_A, wire_power_w=5.1)
        model = ChipThermalModel(plan)
        hot = model.solve({"regfile": 12.0}).peak_c
        nominal = model.solve().peak_c
        assert hot > nominal

    def test_repeated_solves_are_consistent(self):
        plan = build_floorplan(ChipModel.TWO_D_A, wire_power_w=5.1)
        model = ChipThermalModel(plan)
        assert model.solve().peak_c == pytest.approx(model.solve().peak_c)
