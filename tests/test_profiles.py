"""SPEC2k workload profiles."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.profiles import (
    SPEC2K_PROFILES,
    WorkloadProfile,
    get_profile,
    spec2k_suite,
)

# The 7 integer and 12 floating-point programs of the paper's evaluation.
PAPER_BENCHMARKS = {
    "bzip2", "eon", "gap", "gzip", "mcf", "twolf", "vortex", "vpr",
    "ammp", "applu", "apsi", "art", "equake", "fma3d", "galgel",
    "lucas", "mesa", "swim", "wupwise",
}


def test_suite_contains_the_papers_benchmarks():
    assert set(SPEC2K_PROFILES) == PAPER_BENCHMARKS
    assert len(SPEC2K_PROFILES) == 19


def test_int_fp_split():
    ints = [p for p in spec2k_suite() if not p.is_fp]
    fps = [p for p in spec2k_suite() if p.is_fp]
    # gap/eon counted as integer programs: 8 int-coded profiles here since
    # the paper's "7 integer" excludes one with FP content; our profiles
    # mark eon as integer with a small FP mix.
    assert len(ints) + len(fps) == 19
    assert len(fps) == 11 or len(fps) == 12


def test_suite_is_sorted():
    names = [p.name for p in spec2k_suite()]
    assert names == sorted(names)


def test_get_profile_roundtrip():
    assert get_profile("mcf").name == "mcf"


def test_get_profile_unknown():
    with pytest.raises(KeyError):
        get_profile("nonexistent")


@pytest.mark.parametrize("profile", spec2k_suite(), ids=lambda p: p.name)
def test_profile_invariants(profile):
    assert 0.0 < profile.frac_ialu < 1.0
    assert abs(
        profile.p_hot + profile.p_warm + profile.p_xl + profile.p_cold - 1.0
    ) < 1e-9
    assert profile.mean_dep_distance >= 1.0
    assert 0.0 <= profile.hard_branch_fraction <= 1.0
    assert 0.0 <= profile.pointer_chase_fraction <= 1.0
    assert profile.target_ipc > 0


def test_memory_fraction():
    p = get_profile("mcf")
    assert p.frac_memory == pytest.approx(p.frac_load + p.frac_store)


def test_mix_overflow_rejected():
    with pytest.raises(ConfigError):
        WorkloadProfile(
            name="bad", is_fp=False,
            frac_load=0.6, frac_store=0.5, frac_branch=0.2,
        )


def test_region_probability_validation():
    with pytest.raises(ConfigError):
        WorkloadProfile(
            name="bad", is_fp=False,
            frac_load=0.2, frac_store=0.1, frac_branch=0.1,
            p_hot=0.5, p_warm=0.1, p_xl=0.0, p_cold=0.1,
        )


def test_memory_bound_benchmarks_chase_pointers():
    assert get_profile("mcf").pointer_chase_fraction > 0.5
    assert get_profile("art").pointer_chase_fraction > 0.3
    assert get_profile("mesa").pointer_chase_fraction == 0.0


def test_xl_regions_only_on_big_working_set_benchmarks():
    for name in ("mcf", "art", "swim", "ammp"):
        assert get_profile(name).p_xl > 0
    for name in ("gzip", "mesa", "eon"):
        assert get_profile(name).p_xl == 0
