"""NUCA L2 cache: policies, latencies, bank statistics."""

import pytest

from repro.cache.nuca import NucaCache, bank_hops_for_model
from repro.common.config import ChipModel, NucaConfig, NucaPolicy
from repro.common.errors import ConfigError


def make_cache(num_banks=6, policy=NucaPolicy.DISTRIBUTED_SETS, hops=None):
    config = NucaConfig(num_banks=num_banks, policy=policy)
    return NucaCache(config, bank_hops=hops, memory_latency_cycles=300)


class TestBankHops:
    def test_average_latency_2da_is_18_cycles(self):
        cache = make_cache(6, hops=bank_hops_for_model(ChipModel.TWO_D_A))
        latencies = [cache._bank_latency(b) for b in range(6)]
        assert sum(latencies) / 6 == pytest.approx(18.0)

    def test_average_latency_2d2a_is_22_cycles(self):
        cache = make_cache(15, hops=bank_hops_for_model(ChipModel.TWO_D_2A))
        latencies = [cache._bank_latency(b) for b in range(15)]
        assert sum(latencies) / 15 == pytest.approx(22.0, abs=0.5)

    def test_3d_latency_close_to_2da(self):
        hops3d = bank_hops_for_model(ChipModel.THREE_D_2A)
        cache = make_cache(15, hops=hops3d)
        latencies = [cache._bank_latency(b) for b in range(15)]
        assert sum(latencies) / 15 == pytest.approx(18.5, abs=1.0)

    def test_hop_count_matches_banks(self):
        for chip in ChipModel:
            assert len(bank_hops_for_model(chip)) == chip.l2_banks

    def test_mismatched_hops_rejected(self):
        with pytest.raises(ConfigError):
            make_cache(6, hops=[1, 2, 3])


class TestDistributedSets:
    def test_geometry(self):
        cache = make_cache(6)
        assert cache.total_ways == 6
        assert cache.num_sets == 6 * 1024 * 1024 // (6 * 64)

    def test_miss_then_hit(self):
        cache = make_cache()
        first = cache.access(0x1000)
        again = cache.access(0x1000)
        assert not first.hit and again.hit
        assert again.latency_cycles < first.latency_cycles

    def test_same_set_same_bank(self):
        cache = make_cache()
        line_span = cache.num_sets * 64
        a = cache.access(0x40)
        b = cache.access(0x40 + line_span)
        assert a.bank == b.bank

    def test_miss_includes_memory_latency(self):
        cache = make_cache()
        result = cache.access(0)
        assert result.latency_cycles >= 300

    def test_associativity_eviction(self):
        cache = make_cache(6)
        span = cache.num_sets * 64
        lines = [i * span for i in range(7)]  # 7 ways into a 6-way set
        for a in lines:
            cache.access(a)
        assert not cache.access(lines[0]).hit  # evicted (LRU)


class TestDistributedWays:
    def test_geometry_loses_one_bank_to_tags(self):
        cache = make_cache(6, policy=NucaPolicy.DISTRIBUTED_WAYS)
        assert cache.total_ways == 5

    def test_hit_after_fill(self):
        cache = make_cache(6, policy=NucaPolicy.DISTRIBUTED_WAYS)
        cache.access(0x2000)
        assert cache.access(0x2000).hit

    def test_promotion_reduces_latency(self):
        cache = make_cache(6, policy=NucaPolicy.DISTRIBUTED_WAYS)
        cache.access(0x3000)
        latencies = [cache.access(0x3000).latency_cycles for _ in range(5)]
        assert latencies[-1] <= latencies[0]

    def test_needs_two_banks(self):
        with pytest.raises(ConfigError):
            make_cache(1, policy=NucaPolicy.DISTRIBUTED_WAYS)

    def test_eviction_when_full(self):
        cache = make_cache(6, policy=NucaPolicy.DISTRIBUTED_WAYS)
        span = cache.num_sets * 64
        lines = [i * span for i in range(6)]  # 6 lines into 5 ways
        for a in lines:
            cache.access(a)
        assert not cache.access(lines[0]).hit


class TestStatistics:
    def test_bank_access_counts(self):
        cache = make_cache()
        for i in range(60):
            cache.access(i * 64)
        assert sum(cache.bank_access_counts()) == 60

    def test_misses_per_10k(self):
        cache = make_cache()
        for i in range(10):
            cache.access(i * 64)
        assert cache.misses_per_10k(10_000) == pytest.approx(10.0)
        assert cache.misses_per_10k(0) == 0.0

    def test_average_hit_latency_tracks_hits_only(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        assert 6 <= cache.average_hit_latency <= 30
