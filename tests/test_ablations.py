"""Ablation experiments over the checker's design choices."""

import pytest

from repro.experiments.ablations import (
    dfs_sensitivity,
    hard_error_failover,
    interrupt_cost,
    rvp_ablation,
    slack_sweep,
    tmr_comparison,
    transfer_latency_ablation,
)
from repro.experiments.runner import SimulationWindow

TINY = SimulationWindow(warmup=2000, measured=8000)


def test_rvp_lowers_required_frequency():
    """Section 2.1: RVP gives the in-order checker high ILP, letting DFS
    run it slower for the same slack."""
    result = rvp_ablation(benchmark="mcf", window=TINY)
    assert result["without_rvp_mean_frequency"] > result["with_rvp_mean_frequency"]


def test_slack_sweep_monotone_backpressure():
    rows = slack_sweep(slacks=(25, 100, 400), window=TINY)
    backpressure = [r["backpressure"] for r in rows]
    assert backpressure[0] >= backpressure[-1]
    # The paper-size slack (200-400) keeps the leader essentially free.
    assert rows[-1]["leading_ipc"] >= rows[0]["leading_ipc"] - 0.05


def test_dfs_sensitivity_returns_all_intervals():
    rows = dfs_sensitivity(intervals=(500, 2000), window=TINY)
    assert [r["interval_cycles"] for r in rows] == [500, 2000]
    for r in rows:
        assert 0.1 <= r["mean_frequency"] <= 1.0


def test_transfer_latency_barely_matters():
    """The via's latency advantage is absorbed by the slack: the 3D win
    is wiring and power, not cycles."""
    result = transfer_latency_ablation(window=TINY)
    assert result["via_1_cycle_leading_ipc"] > 0
    # Different chips (cache sizes) dominate; frequencies remain sane.
    assert 0.1 <= result["wire_4_cycles_mean_frequency"] <= 1.0


def test_hard_error_failover_costs_performance():
    result = hard_error_failover(window=TINY)
    assert result["failover_in_order_ipc"] < result["out_of_order_ipc"]
    assert 0.1 < result["slowdown"] < 0.9


def test_interrupt_cost_is_modest():
    """Section 2: waiting for the trailer at interrupts is affordable —
    draining ~80 instructions of slack per interrupt costs well under 1%
    at realistic interrupt rates."""
    result = interrupt_cost(window=TINY)
    assert result["mean_slack_instructions"] > 0
    assert result["drain_cycles_per_interrupt"] > 0
    assert result["throughput_overhead"] < 0.05


def test_interrupt_cost_scales_with_rate():
    low = interrupt_cost(window=TINY, interrupt_rate_per_million=10.0)
    high = interrupt_cost(window=TINY, interrupt_rate_per_million=1000.0)
    assert high["throughput_overhead"] > low["throughput_overhead"]


def test_tmr_comparison():
    result = tmr_comparison(instructions=8000)
    assert result["rmt_safe"] == 1.0
    assert result["tmr_safe"] == 1.0
    assert result["tmr_masked_errors"] > 0
    assert result["tmr_execution_overhead"] > result["rmt_execution_overhead"]
