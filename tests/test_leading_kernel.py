"""The windowed issue/retire kernel vs its scalar oracle.

The kernel (:meth:`LeadingCoreTiming.advance_window` driven through
``run_arrays``) must be *bit-identical* to the retained per-row scalar
path (``_advance``), which itself must match the object path — including
RMT queue-stall attribution, op counts, and predictor totals.  These
tests pin that three-way equality property-based over random workloads,
window shapes and chip models, plus exact Figure 6 goldens through the
sweep engine and the lockstep :class:`SimBatch` path.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import memo
from repro.common.config import ChipModel, SystemConfig
from repro.core.branch import BranchPredictor
from repro.core.leading import LeadingCoreTiming, _PRUNE_PERIOD
from repro.core.memory import MemoryHierarchy
from repro.core.rmt import RmtSimulator
from repro.experiments.perf import fig6_performance
from repro.experiments.runner import (
    SimTask,
    SimulationWindow,
    run_batch,
    run_sim_task,
)
from repro.isa.opcodes import OP_BRANCH
from repro.isa.trace import TraceGenerator
from repro.workloads.profiles import get_profile, spec2k_suite

_PROFILES = spec2k_suite()


def _leading_core(cfg):
    memory = MemoryHierarchy(cfg.leading, cfg.nuca, cfg.chip)
    return LeadingCoreTiming(cfg.leading, memory, BranchPredictor())


def _leading_state(core):
    return (
        core._fetch_cycle, core._fetch_in_group, core._redirect_until,
        list(core._rob_commits), list(core._lsq_commits),
        list(core._int_issues), list(core._fp_issues), core._rename,
        core._last_commit_cycle, core._commits_in_cycle, core._scheduled,
        core._op_counts,
    )


@given(
    profile=st.sampled_from(_PROFILES),
    seed=st.integers(0, 10_000),
    n=st.integers(50, 1800),
    warmup_frac=st.floats(0.0, 0.9),
    chip=st.sampled_from([ChipModel.TWO_D_A, ChipModel.THREE_D_2A]),
)
@settings(max_examples=12, deadline=None)
def test_kernel_equals_oracle_equals_objects_leading(
    profile, seed, n, warmup_frac, chip
):
    """run_arrays(kernel) == run_arrays(oracle) == run(objects), exactly.

    Equality covers the result dataclass (IPC, cycles, op counts) *and*
    the end state of the scheduling machine — the kernel's ``end_kernel``
    must reconstruct the deques/rename map the scalar path would hold.
    """
    warmup = int(n * warmup_frac)
    cfg = SystemConfig.for_chip(chip)
    trace = TraceGenerator(profile, seed=seed).generate_arrays(n)

    kernel_core = _leading_core(cfg)
    kernel_result = kernel_core.run_arrays(trace, warmup)
    assert kernel_core._kernel is None  # kernel mode exited

    oracle_core = _leading_core(cfg)
    oracle_core.kernel_eligible = lambda: False  # force the scalar path
    oracle_result = oracle_core.run_arrays(trace, warmup)

    object_core = _leading_core(cfg)
    object_result = object_core.run(trace.to_instructions(), warmup)

    assert dataclasses.asdict(kernel_result) == dataclasses.asdict(
        oracle_result
    ) == dataclasses.asdict(object_result)
    assert _leading_state(kernel_core) == _leading_state(oracle_core)


def _rmt_sim(cfg, transfer, peak):
    memory = MemoryHierarchy(cfg.leading, cfg.nuca, cfg.chip)
    return RmtSimulator(
        cfg.leading, cfg.checker, memory, BranchPredictor(),
        transfer_latency_cycles=transfer, checker_peak_ratio=peak,
    )


@given(
    profile=st.sampled_from(_PROFILES),
    seed=st.integers(0, 10_000),
    n=st.integers(50, 1500),
    warmup_frac=st.floats(0.0, 0.9),
    chip_transfer_peak=st.sampled_from([
        (ChipModel.THREE_D_2A, 1, 1.0),
        (ChipModel.TWO_D_2A, 4, 1.0),
        (ChipModel.THREE_D_CHECKER, 1, 0.7),
    ]),
)
@settings(max_examples=10, deadline=None)
def test_kernel_equals_oracle_equals_objects_rmt(
    profile, seed, n, warmup_frac, chip_transfer_peak
):
    """RMT co-simulation equality under queue gating and DFS.

    Beyond the result dataclass, the backpressure totals, the per-queue
    stall attribution and the full commit/consume/occupancy streams must
    be identical — the kernel's drain-chunk boundaries may not perturb
    the checker schedule by even one row.
    """
    chip, transfer, peak = chip_transfer_peak
    warmup = int(n * warmup_frac)
    cfg = SystemConfig.for_chip(chip)
    trace = TraceGenerator(profile, seed=seed).generate_arrays(n)

    sim_k = _rmt_sim(cfg, transfer, peak)
    result_k = sim_k.run_arrays(trace, warmup)
    sim_o = _rmt_sim(cfg, transfer, peak)
    sim_o.leading.kernel_eligible = lambda: False
    result_o = sim_o.run_arrays(trace, warmup)
    sim_j = _rmt_sim(cfg, transfer, peak)
    result_j = sim_j.run(trace.to_instructions(), warmup)

    assert dataclasses.asdict(result_k) == dataclasses.asdict(
        result_o
    ) == dataclasses.asdict(result_j)
    assert sim_k.queue_stalls == sim_o.queue_stalls == sim_j.queue_stalls
    assert (
        sim_k.backpressure_commits
        == sim_o.backpressure_commits
        == sim_j.backpressure_commits
    )
    assert list(sim_k._commit_times) == sim_o._commit_times
    assert sim_k._consume_times == sim_o._consume_times
    assert sim_k._occupancy_samples == sim_o._occupancy_samples


def test_usage_maps_stay_bounded_across_prunes():
    """The ring-based `_prune` keeps both usage maps bounded.

    Scheduling many ROB lifetimes' worth of instructions must not grow
    ``_issue_usage``/``_fu_usage`` beyond a few prune periods' worth of
    distinct cycle keys, on both the kernel and the scalar path.
    """
    n = 3 * _PRUNE_PERIOD + 123
    trace = TraceGenerator(get_profile("gzip"), seed=5).generate_arrays(n)
    for force_oracle in (False, True):
        cfg = SystemConfig.for_chip(ChipModel.TWO_D_A)
        core = _leading_core(cfg)
        if force_oracle:
            core.kernel_eligible = lambda: False
        core.run_arrays(trace)
        # A prune retains at most the live horizon plus the keys issued
        # since the previous prune — far below one key per instruction.
        bound = 2 * _PRUNE_PERIOD
        assert len(core._issue_usage) < bound
        assert len(core._fu_usage) < 4 * bound
        assert len(core._fresh_usage_keys) < bound
        assert sum(len(p) for p in core._usage_key_ring) < 2 * bound


_GOLDEN_WINDOW = SimulationWindow(warmup=2000, measured=6000)
_GOLDEN_FIG6 = {
    "gzip": {
        "2d-a": 1.5143866733972742,
        "2d-2a": 1.3802622498274673,
        "3d-2a": 1.4807502467917077,
        "3d-checker": 1.5143866733972742,
    },
    "mcf": {
        "2d-a": 0.4550625711035267,
        "2d-2a": 0.4118333447731485,
        "3d-2a": 0.44836347332237336,
        "3d-checker": 0.44749403341288785,
    },
}


def _fig6_rows(jobs, **kwargs):
    memo.clear_cache()
    benchmarks = [get_profile(name) for name in _GOLDEN_FIG6]
    rows = fig6_performance(
        window=_GOLDEN_WINDOW, benchmarks=benchmarks, jobs=jobs, **kwargs
    )
    return {row.benchmark: row.ipc for row in rows}


def test_fig6_kernel_golden_jobs1():
    """Exact (float-equal) Figure 6 IPC goldens on the kernel path."""
    assert _fig6_rows(jobs=1) == _GOLDEN_FIG6


def test_fig6_kernel_golden_jobs2():
    """The same goldens through the process-parallel engine."""
    assert _fig6_rows(jobs=2) == _GOLDEN_FIG6


def test_fig6_simbatch_matches_golden():
    """Lockstep SimBatch stepping reproduces the goldens exactly."""
    assert _fig6_rows(jobs=1, simbatch=True) == _GOLDEN_FIG6


def test_simbatch_equals_solo_runs():
    """run_batch's lockstep grouping == running every task solo."""
    window = SimulationWindow(warmup=1500, measured=4000)
    tasks = [
        SimTask(
            kind="rmt" if chip.has_checker else "leading",
            profile=get_profile(name), chip=chip, window=window,
        )
        for name in ("gzip", "swim")
        for chip in (
            ChipModel.TWO_D_A, ChipModel.TWO_D_2A,
            ChipModel.THREE_D_2A, ChipModel.THREE_D_CHECKER,
        )
    ]
    memo.clear_cache()
    solo = [run_sim_task(task) for task in tasks]
    memo.clear_cache()
    batched = run_batch(tasks)
    assert batched == solo


def test_branch_stream_view_equals_clone():
    """A shared BranchStreamView resolves exactly like a private clone.

    Two interleaved views over one stream must each see the flags,
    lookup and mispredict totals a per-simulation predictor clone
    would produce, with the underlying predictor replayed only once.
    """
    memo.clear_cache()
    cache = memo.get_cache()
    profile = get_profile("gzip")
    trace = TraceGenerator(profile, seed=3).generate_arrays(4000)
    rows = [
        (int(pc), bool(tk), int(tg))
        for pc, op, tk, tg in zip(
            trace.pc, trace.op, trace.taken, trace.target
        )
        if op == OP_BRANCH
    ]
    assert len(rows) > 100  # the workload must actually branch
    windows = [rows[:300], rows[300:1000], rows[1000:]]

    view_a = cache.branch_stream_view(profile, 3)
    view_b = cache.branch_stream_view(profile, 3)
    clone = cache.pretrained_predictor(profile, 3)
    assert view_a is not view_b
    for window in windows:
        pcs = [r[0] for r in window]
        takens = [r[1] for r in window]
        targets = [r[2] for r in window]
        expected = clone.update_window(pcs, takens, targets)
        # Interleave the two views: each keeps its own cursor.
        assert view_a.update_window(pcs, takens, targets) == expected
        assert view_b.update_window(pcs, takens, targets) == expected
        assert view_a.lookups == clone.lookups
        assert view_a.mispredicts == clone.mispredicts
        assert view_b.misprediction_rate == clone.misprediction_rate
