"""Optional NUCA bank-contention modelling."""

import pytest

from repro.cache.nuca import NucaCache
from repro.common.config import NucaConfig


def test_contention_off_by_default():
    cache = NucaCache(NucaConfig(num_banks=6))
    span = cache.num_sets * 64
    base = cache.access(0).latency_cycles
    # Hammer the same bank: without contention modelling, hit latency is flat.
    lat = [cache.access(0).latency_cycles for _ in range(8)]
    assert len(set(lat)) == 1
    assert lat[0] < base  # hits after the fill


def test_same_bank_hammering_queues():
    cache = NucaCache(NucaConfig(num_banks=6, model_contention=True))
    cache.access(0)  # fill
    first = cache.access(0).latency_cycles
    later = [cache.access(0).latency_cycles for _ in range(6)]
    assert max(later) > first - 1  # queueing grows latency
    assert cache.stats["bank_conflicts"].value > 0


def test_spread_traffic_sees_no_contention():
    cache = NucaCache(NucaConfig(num_banks=6, model_contention=True))
    # Touch six different banks round-robin: window of 4 never repeats.
    addresses = [i * 64 for i in range(6)]
    for a in addresses:
        cache.access(a)
    banks = {cache.access(a).bank for a in addresses}
    if len(banks) == 6:  # consecutive sets map to distinct banks
        assert cache.stats["bank_conflicts"].value == 0


def test_contended_latency_still_bounded():
    config = NucaConfig(num_banks=6, model_contention=True, contention_window=4)
    cache = NucaCache(config)
    cache.access(0)
    worst = max(cache.access(0).latency_cycles for _ in range(20))
    uncontended = config.bank_access_cycles + max(
        h * config.hop_cycles for h in cache.bank_hops
    )
    assert worst <= uncontended + config.contention_window * config.bank_access_cycles
