"""Property-based tests for the bounded FIFO queues."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueueEmptyError, QueueFullError
from repro.core.queues import BoundedQueue


@given(
    capacity=st.integers(1, 64),
    items=st.lists(st.integers(), max_size=200),
)
def test_fifo_preserves_order_under_any_push_sequence(capacity, items):
    q = BoundedQueue(capacity)
    accepted = []
    for item in items:
        if not q.is_full:
            q.push(item)
            accepted.append(item)
    popped = []
    while not q.is_empty:
        popped.append(q.pop())
    assert popped == accepted[: capacity]


@given(
    capacity=st.integers(1, 32),
    ops=st.lists(st.sampled_from(["push", "pop"]), max_size=300),
)
def test_occupancy_invariant_under_interleaved_ops(capacity, ops):
    q = BoundedQueue(capacity)
    model = []
    counter = 0
    for op in ops:
        if op == "push":
            if len(model) < capacity:
                q.push(counter)
                model.append(counter)
                counter += 1
            else:
                with pytest.raises(QueueFullError):
                    q.push(counter)
        else:
            if model:
                assert q.pop() == model.pop(0)
            else:
                with pytest.raises(QueueEmptyError):
                    q.pop()
        assert q.occupancy == len(model)
        assert q.is_full == (len(model) == capacity)
        assert q.is_empty == (not model)
        assert 0.0 <= q.occupancy_fraction <= 1.0


@given(capacity=st.integers(1, 16), n=st.integers(0, 40))
def test_total_pushes_monotonic(capacity, n):
    q = BoundedQueue(capacity)
    pushed = 0
    for i in range(n):
        if not q.is_full:
            q.push(i)
            pushed += 1
        if i % 3 == 0 and not q.is_empty:
            q.pop()
    assert q.total_pushes == pushed
