"""SER scaling, MBU, timing errors, checker resilience."""

import pytest

from repro.reliability.margins import (
    checker_resilience,
    compare_checker_processes,
)
from repro.reliability.ser import (
    SER_PER_BIT_RELATIVE,
    SoftErrorModel,
    critical_charge_fc,
    mbu_probability,
    per_bit_ser,
    total_chip_ser,
)
from repro.reliability.timing import TimingErrorModel, timing_error_rate


class TestSerScaling:
    def test_per_bit_rate_declines_with_scaling(self):
        rates = [per_bit_ser(n) for n in (180, 130, 90, 65)]
        assert rates == sorted(rates, reverse=True)

    def test_chip_rate_rises_with_scaling(self):
        """Figure 8: total SER increases despite the per-bit decline."""
        totals = [total_chip_ser(n) for n in (180, 130, 90, 65)]
        assert totals == sorted(totals)

    def test_reference_normalisation(self):
        assert total_chip_ser(180) == pytest.approx(1.0)

    def test_90nm_beats_65nm_per_bit(self):
        """Section 4: the older process is more SER-resilient."""
        assert per_bit_ser(90) > per_bit_ser(65)  # larger critical charge...
        assert per_bit_ser(65) / per_bit_ser(90) < 1.0

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            per_bit_ser(28)


class TestMbu:
    def test_probability_rises_as_charge_falls(self):
        charges = [critical_charge_fc(n) for n in (180, 130, 90, 65, 45)]
        probs = [mbu_probability(q) for q in charges]
        assert probs == sorted(probs)

    def test_bounded(self):
        assert 0.0 < mbu_probability(0.1) < 1.0
        assert mbu_probability(100.0) < 1e-10

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            mbu_probability(-1.0)

    def test_older_node_has_fewer_mbus(self):
        assert mbu_probability(critical_charge_fc(90)) < mbu_probability(
            critical_charge_fc(65)
        )


class TestSoftErrorModel:
    def test_fit_scales_with_node(self):
        assert SoftErrorModel(90).fit_per_mbit() > SoftErrorModel(65).fit_per_mbit() * 0.9

    def test_upset_probability_tiny_per_cycle(self):
        model = SoftErrorModel(65)
        p = model.upset_probability_per_cycle(bits=8 * 1024 * 1024 * 6)
        assert 0.0 < p < 1e-9

    def test_mbu_fraction(self):
        assert 0.0 < SoftErrorModel(65).mbu_fraction() < 0.5


class TestTimingModel:
    def test_error_rate_falls_with_frequency(self):
        model = TimingErrorModel()
        rates = [
            model.error_rate_per_instruction(f) for f in (1.0, 0.9, 0.8, 0.6)
        ]
        assert rates == sorted(rates, reverse=True)
        assert rates[-1] < 1e-12  # at 0.6f the slack is enormous

    def test_slack_at_060(self):
        """Section 3.5: at 0.6x frequency, circuits finish within ~half the
        cycle, leaving large margins."""
        slack = TimingErrorModel().slack_fraction(0.6)
        assert slack == pytest.approx(0.46, abs=0.02)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            TimingErrorModel().stage_error_probability(0.0)

    def test_older_node_at_same_clock_misses_timing(self):
        """A 90 nm circuit at the 65 nm peak clock violates timing."""
        model = TimingErrorModel(feature_nm=90)
        assert model.nominal_delay_fraction(reference_nm=65) > 1.0
        assert model.error_rate_per_instruction(1.0, reference_nm=65) > 0.5

    def test_older_node_fine_at_its_own_peak(self):
        """Capped at 0.7x (1.4 GHz), the 90 nm checker has slack again."""
        model = TimingErrorModel(feature_nm=90)
        assert model.error_rate_per_instruction(0.6, reference_nm=65) < 1e-6

    def test_convenience_wrapper(self):
        assert timing_error_rate(0.6) == pytest.approx(
            TimingErrorModel().error_rate_per_instruction(0.6)
        )


class TestResilience:
    RESIDENCY = {0.4: 0.2, 0.5: 0.3, 0.6: 0.4, 0.7: 0.1}

    def test_residency_weighted_rates(self):
        result = checker_resilience(self.RESIDENCY)
        assert result.expected_timing_error_rate < 1e-9
        assert 0.4 < result.mean_slack_fraction < 0.7

    def test_empty_residency_rejected(self):
        with pytest.raises(ValueError):
            checker_resilience({})

    def test_process_comparison_favours_older_node(self):
        """Section 4's conclusion: the 90 nm checker is more resilient.

        The raw per-bit rate is higher at 90 nm (Figure 8's declining
        per-bit curve), but its larger critical charge means far fewer
        multi-bit upsets — the ones ECC cannot correct — and its timing
        margins are what recovery actually depends on.
        """
        results = compare_checker_processes(self.RESIDENCY)
        old = results["older-node"]
        new = results["same-node"]
        assert old.mbu_fraction < new.mbu_fraction
        assert old.uncorrectable_upset_rate < new.uncorrectable_upset_rate

    def test_capped_levels_fold_into_peak(self):
        residency = {0.9: 0.5, 1.0: 0.5}
        results = compare_checker_processes(residency, peak_ratio_old=0.7)
        assert results["older-node"].feature_nm == 90
