"""The functional (value-domain) RMT engine and its fault coverage."""

import pytest

from repro.common.config import QueueConfig
from repro.core.faults import Fault, FaultInjector, FaultKind, FaultRates, FaultSite
from repro.core.functional import FunctionalRmt, golden_store_stream
from repro.isa.trace import generate_trace
from repro.workloads.profiles import get_profile


@pytest.fixture(scope="module")
def trace():
    return generate_trace(get_profile("gzip"), 8000, seed=13)


@pytest.fixture(scope="module")
def golden(trace):
    return FunctionalRmt().run(trace)


class TestFaultFree:
    def test_no_mismatches(self, trace, golden):
        assert golden.mismatches_detected == 0
        assert golden.recoveries == 0
        assert golden.instructions == len(trace)

    def test_store_stream_nonempty(self, golden):
        assert len(golden.drained_stores) > 100

    def test_regfiles_converge(self, trace):
        rmt = FunctionalRmt()
        rmt.run(trace)
        assert rmt.leading_regs == rmt.trailing_regs

    def test_deterministic(self, trace, golden):
        again = FunctionalRmt().run(trace)
        assert again.store_stream == golden.store_stream
        assert again.final_trailing_regfile == golden.final_trailing_regfile


class _OneShotInjector:
    """Injects exactly one fault at a chosen (seq, core)."""

    def __init__(self, site, seq, bits=(7,)):
        trailing_sites = (FaultSite.TRAILING_RESULT, FaultSite.TRAILING_REGFILE)
        self.core = "trailing" if site in trailing_sites else "leading"
        self.site, self.seq, self.bits = site, seq, bits
        self.injected = []

    def faults_for(self, seq, core):
        if seq == self.seq and core == self.core:
            fault = Fault(seq, FaultKind.SOFT_ERROR, self.site, self.bits)
            self.injected.append(fault)
            return [fault]
        return []


class TestSingleFaultCoverage:
    @pytest.mark.parametrize("site", list(FaultSite), ids=lambda s: s.value)
    @pytest.mark.parametrize("bits", [(7,), (7, 31)], ids=["1bit", "2bit"])
    def test_store_stream_survives_any_single_fault(self, trace, golden, site, bits):
        for seq in (500, 2500, 6000):
            injector = _OneShotInjector(site, seq, bits)
            result = FunctionalRmt(injector=injector).run(trace)
            assert result.store_stream == golden.store_stream, (
                f"{site.value} fault at {seq} corrupted the store stream"
            )

    def test_result_fault_is_detected(self, trace):
        # Find a register-writing non-load instruction and corrupt its result.
        target = next(
            i.seq for i in trace
            if i.writes_register and not i.is_load and i.seq > 100
        )
        injector = _OneShotInjector(FaultSite.LEADING_RESULT, target)
        result = FunctionalRmt(injector=injector).run(trace)
        assert result.mismatches_detected >= 1
        assert result.recoveries == result.mismatches_detected

    def test_lvq_single_bit_is_corrected(self, trace):
        target = next(i.seq for i in trace if i.is_load and i.seq > 100)
        injector = _OneShotInjector(FaultSite.LVQ_VALUE, target, (9,))
        result = FunctionalRmt(injector=injector).run(trace)
        assert result.ecc_corrections == 1
        assert result.mismatches_detected == 0


class TestCampaign:
    def test_heavy_campaign_is_architecturally_safe(self, trace, golden):
        injector = FaultInjector(
            leading=FaultRates(soft_error=1e-3, timing_error=1e-3),
            trailing=FaultRates(soft_error=5e-4, timing_error=5e-4),
            seed=21,
        )
        result = FunctionalRmt(injector=injector).run(trace)
        assert len(injector.injected) > 10
        assert result.mismatches_detected > 0
        assert result.store_stream == golden.store_stream
        assert result.silent_corruptions == 0

    def test_detection_implies_recovery(self, trace):
        injector = FaultInjector(
            leading=FaultRates(soft_error=2e-3), seed=5
        )
        result = FunctionalRmt(injector=injector).run(trace)
        assert result.recoveries == result.mismatches_detected


def test_golden_store_stream_helper(trace, golden):
    assert golden_store_stream(trace) == golden.store_stream


def test_custom_queue_config():
    trace = generate_trace(get_profile("gzip"), 500, seed=1)
    rmt = FunctionalRmt(queues=QueueConfig(slack_target=50, rvq_entries=50))
    result = rmt.run(trace)
    assert result.instructions == 500
