"""The leading core's memory hierarchy."""

import pytest

from repro.common.config import ChipModel, LeadingCoreConfig, NucaConfig
from repro.core.memory import MemoryHierarchy
from repro.workloads.profiles import get_profile


def make_memory(chip=ChipModel.TWO_D_A):
    return MemoryHierarchy(
        LeadingCoreConfig(), NucaConfig(num_banks=chip.l2_banks), chip
    )


class TestLoadPath:
    def test_l1_hit_is_fast(self):
        memory = make_memory()
        memory.load_latency(0x100)          # install
        assert memory.load_latency(0x100) == 2

    def test_l1_miss_l2_hit_costs_nuca_latency(self):
        memory = make_memory()
        memory.load_latency(0x100)          # install in L1 and L2
        memory.l1d.invalidate(0x100)
        latency = memory.load_latency(0x100)
        assert 2 + 6 <= latency <= 2 + 30    # L1 + bank/hops, no memory

    def test_cold_miss_costs_memory_latency(self):
        memory = make_memory()
        assert memory.load_latency(0xDEAD00) > 300


class TestFetchPath:
    def test_warm_fetch_is_one_cycle(self):
        memory = make_memory()
        memory.fetch_latency(0x40)
        assert memory.fetch_latency(0x40) == 1

    def test_icache_does_not_alias_dcache(self):
        memory = make_memory()
        memory.load_latency(0x40)
        # Same numeric pc in I-space must still miss (disjoint spaces).
        assert memory.fetch_latency(0x40) > 1


class TestPreload:
    def test_preload_makes_hot_region_hit(self):
        profile = get_profile("gzip")
        memory = make_memory()
        memory.preload_profile(profile)
        assert memory.load_latency(0x0) == 2
        assert memory.load_latency(profile.hot_bytes - 8) == 2

    def test_preload_makes_warm_region_l2_resident(self):
        profile = get_profile("gzip")
        memory = make_memory()
        memory.preload_profile(profile)
        latency = memory.load_latency(0x1000_0000)
        assert latency < 300

    def test_preload_resets_statistics(self):
        memory = make_memory()
        memory.preload_profile(get_profile("gzip"))
        assert memory.l2.accesses == 0
        assert memory.l1d.accesses == 0

    def test_xl_region_fits_only_in_15mb(self):
        profile = get_profile("mcf")
        small = make_memory(ChipModel.TWO_D_A)
        small.preload_profile(profile)
        big = make_memory(ChipModel.TWO_D_2A)
        big.preload_profile(profile)
        # Probe the middle of the xl region: in 15 MB most of it survives
        # preload (only the oldest lines are evicted by the slight capacity
        # shortfall), while in 6 MB everything but the newest sliver is
        # evicted by the warm region installed after it.
        xl_addr = 0x2000_0000 + (profile.xl_bytes // 2 // 64) * 64
        assert big.load_latency(xl_addr) < 300     # resident in 15 MB
        assert small.load_latency(xl_addr) > 300   # evicted from 6 MB


class TestStatistics:
    def test_misses_per_10k(self):
        memory = make_memory()
        for i in range(5):
            memory.load_latency(0x900000 + i * 4096)
        assert memory.l2_misses_per_10k(10_000) == pytest.approx(5.0)

    def test_average_l2_hit_latency(self):
        memory = make_memory()
        memory.load_latency(0x100)
        memory.l1d.invalidate(0x100)
        memory.load_latency(0x100)
        assert memory.average_l2_hit_latency > 0

    def test_store_commit_installs_line(self):
        memory = make_memory()
        memory.store_commit(0x4000)
        assert memory.load_latency(0x4000) == 2
