"""Property-based tests for the cache models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.nuca import NucaCache
from repro.cache.sram import SetAssociativeCache
from repro.common.config import CacheGeometry, NucaConfig, NucaPolicy

addresses = st.integers(0, 2**20)


@given(st.lists(addresses, max_size=400))
@settings(max_examples=50)
def test_sram_capacity_never_exceeded(trace):
    cache = SetAssociativeCache(
        CacheGeometry(size_bytes=4 * 64 * 4, ways=4, line_bytes=64)
    )
    for a in trace:
        cache.access(a)
        assert cache.resident_lines() <= 16


@given(st.lists(addresses, max_size=300))
@settings(max_examples=50)
def test_sram_immediate_rereference_always_hits(trace):
    cache = SetAssociativeCache(CacheGeometry())
    for a in trace:
        cache.access(a)
        assert cache.probe(a)


@given(st.lists(addresses, min_size=1, max_size=300))
@settings(max_examples=50)
def test_sram_hits_plus_misses_equals_accesses(trace):
    cache = SetAssociativeCache(CacheGeometry())
    for a in trace:
        cache.access(a)
    assert cache.hits + cache.misses == len(trace)
    assert 0.0 <= cache.miss_rate <= 1.0


@given(st.lists(addresses, max_size=200), st.booleans())
@settings(max_examples=30)
def test_nuca_rereference_hits_under_both_policies(trace, use_ways):
    policy = NucaPolicy.DISTRIBUTED_WAYS if use_ways else NucaPolicy.DISTRIBUTED_SETS
    cache = NucaCache(NucaConfig(num_banks=6, policy=policy))
    for a in trace:
        cache.access(a)
        assert cache.access(a).hit


@given(st.lists(addresses, min_size=1, max_size=200))
@settings(max_examples=30)
def test_nuca_latency_bounds(trace):
    cache = NucaCache(NucaConfig(num_banks=6), memory_latency_cycles=300)
    max_hit = max(
        cache._bank_latency(b) for b in range(6)
    )
    for a in trace:
        result = cache.access(a)
        if result.hit:
            assert result.latency_cycles <= max_hit
        else:
            assert result.latency_cycles >= 300
        assert 0 <= result.bank < 6


@given(st.lists(addresses, min_size=1, max_size=200))
@settings(max_examples=30)
def test_nuca_bank_counts_sum_to_accesses(trace):
    cache = NucaCache(NucaConfig(num_banks=6))
    for a in trace:
        cache.access(a)
    assert sum(cache.bank_access_counts()) == len(trace)
    assert cache.hits + cache.misses == len(trace)
