"""Public API surface: every __all__ entry resolves, docstrings exist."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.common",
    "repro.isa",
    "repro.workloads",
    "repro.cache",
    "repro.core",
    "repro.power",
    "repro.floorplan",
    "repro.thermal",
    "repro.interconnect",
    "repro.reliability",
    "repro.experiments",
    "repro.viz",
]

MODULES = [
    "repro.cli",
    "repro.presets",
    "repro.common.units",
    "repro.common.tables",
    "repro.core.tmr",
    "repro.thermal.transient",
    "repro.thermal.dtm",
    "repro.thermal.leakage",
    "repro.interconnect.topology",
    "repro.experiments.ablations",
    "repro.experiments.calibration",
    "repro.experiments.error_performance",
    "repro.experiments.report",
    "repro.experiments.sensitivity",
    "repro.experiments.shared_cache",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports_and_documents(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} has no module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} exports nothing"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_objects_have_docstrings(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if callable(obj) or isinstance(obj, type):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_version():
    import repro

    assert repro.__version__.count(".") == 2
