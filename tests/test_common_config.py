"""Configuration dataclasses and their validation."""

import pytest

from repro.common.config import (
    BranchPredictorConfig,
    CacheGeometry,
    CheckerCoreConfig,
    ChipModel,
    DfsConfig,
    LeadingCoreConfig,
    NucaConfig,
    NucaPolicy,
    QueueConfig,
    SystemConfig,
    ThermalConfig,
)
from repro.common.errors import ConfigError


class TestCacheGeometry:
    def test_table1_l1(self):
        geometry = CacheGeometry()
        assert geometry.size_bytes == 32 * 1024
        assert geometry.ways == 2
        assert geometry.num_sets == 256

    def test_bad_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=1000)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=3 * 64 * 2, ways=2, line_bytes=64)


class TestBranchPredictorConfig:
    def test_table1_defaults(self):
        cfg = BranchPredictorConfig()
        assert cfg.bimodal_entries == 16384
        assert cfg.history_bits == 12
        assert cfg.mispredict_penalty_cycles == 12
        assert cfg.btb_sets == 16384
        assert cfg.btb_ways == 2

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(bimodal_entries=1000)


class TestLeadingCoreConfig:
    def test_table1_defaults(self):
        cfg = LeadingCoreConfig()
        assert cfg.fetch_width == 4
        assert cfg.rob_size == 80
        assert cfg.int_issue_queue_size == 20
        assert cfg.fp_issue_queue_size == 15
        assert cfg.lsq_size == 40
        assert cfg.int_alus == 4 and cfg.int_mults == 2
        assert cfg.fp_alus == 1 and cfg.fp_mults == 1
        assert cfg.frequency_hz == 2.0e9
        assert cfg.memory_latency_cycles == 300

    def test_scaled_frequency(self):
        scaled = LeadingCoreConfig().scaled_frequency(0.9)
        assert scaled.frequency_hz == pytest.approx(1.8e9)

    def test_invalid_rob_rejected(self):
        with pytest.raises(ConfigError):
            LeadingCoreConfig(rob_size=0)


class TestQueueConfig:
    def test_section21_sizes(self):
        cfg = QueueConfig()
        assert cfg.slack_target == 200
        assert cfg.rvq_entries == 200
        assert cfg.lvq_entries == 80
        assert cfg.boq_entries == 40
        assert cfg.stb_entries == 40

    def test_rvq_must_cover_slack(self):
        with pytest.raises(ConfigError):
            QueueConfig(slack_target=300, rvq_entries=200)


class TestDfsConfig:
    def test_levels(self):
        levels = DfsConfig().levels()
        assert levels[0] == pytest.approx(0.1)
        assert levels[-1] == pytest.approx(1.0)
        assert len(levels) == 10

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            DfsConfig(low_occupancy_threshold=0.8, high_occupancy_threshold=0.4)

    def test_min_level_validation(self):
        with pytest.raises(ConfigError):
            DfsConfig(min_level=0)


class TestChipModel:
    def test_checker_presence(self):
        assert not ChipModel.TWO_D_A.has_checker
        assert ChipModel.TWO_D_2A.has_checker
        assert ChipModel.THREE_D_2A.has_checker
        assert ChipModel.THREE_D_CHECKER.has_checker

    def test_dimensionality(self):
        assert not ChipModel.TWO_D_A.is_3d
        assert not ChipModel.TWO_D_2A.is_3d
        assert ChipModel.THREE_D_2A.is_3d
        assert ChipModel.THREE_D_CHECKER.is_3d

    def test_bank_counts(self):
        assert ChipModel.TWO_D_A.l2_banks == 6
        assert ChipModel.TWO_D_2A.l2_banks == 15
        assert ChipModel.THREE_D_2A.l2_banks == 15
        assert ChipModel.THREE_D_CHECKER.l2_banks == 6


class TestNucaConfig:
    def test_totals(self):
        cfg = NucaConfig(num_banks=15)
        assert cfg.total_size_bytes == 15 * 1024 * 1024
        assert cfg.total_ways == 15

    def test_policy_default_is_sets(self):
        assert NucaConfig().policy is NucaPolicy.DISTRIBUTED_SETS


class TestThermalConfig:
    def test_table3_values(self):
        cfg = ThermalConfig()
        assert cfg.bulk_si_thickness_die1_m == pytest.approx(750e-6)
        assert cfg.bulk_si_thickness_die2_m == pytest.approx(20e-6)
        assert cfg.active_layer_thickness_m == pytest.approx(1e-6)
        assert cfg.metal_layer_thickness_m == pytest.approx(12e-6)
        assert cfg.d2d_via_thickness_m == pytest.approx(10e-6)
        assert cfg.si_resistivity_mk_per_w == pytest.approx(0.01)
        assert cfg.cu_resistivity_mk_per_w == pytest.approx(0.0833)
        assert cfg.d2d_resistivity_mk_per_w == pytest.approx(0.0166)
        assert cfg.grid_rows == 50 and cfg.grid_cols == 50
        assert cfg.ambient_c == pytest.approx(47.0)

    def test_tiny_grid_rejected(self):
        with pytest.raises(ConfigError):
            ThermalConfig(grid_rows=1)


class TestSystemConfig:
    def test_for_chip_sets_banks(self):
        cfg = SystemConfig.for_chip(ChipModel.TWO_D_A)
        assert cfg.nuca.num_banks == 6
        cfg15 = SystemConfig.for_chip(ChipModel.THREE_D_2A)
        assert cfg15.nuca.num_banks == 15

    def test_negative_checker_power_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(checker_power_w=-1.0)
