"""Small cross-cutting pieces: errors, helpers, reprs."""

import pytest

from repro.cache.nuca import AccessResult
from repro.common import errors
from repro.experiments.calibration import CalibrationRow, _spearman, suite_summary


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.ConfigError,
            errors.SimulationError,
            errors.QueueFullError,
            errors.QueueEmptyError,
            errors.FloorplanError,
            errors.ThermalModelError,
            errors.CalibrationError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_queue_errors_are_simulation_errors(self):
        assert issubclass(errors.QueueFullError, errors.SimulationError)
        assert issubclass(errors.QueueEmptyError, errors.SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.QueueFullError("full")


class TestAccessResult:
    def test_repr_mentions_outcome(self):
        hit = AccessResult(True, 18, 3)
        miss = AccessResult(False, 318, 1)
        assert "hit" in repr(hit)
        assert "miss" in repr(miss)
        assert "18" in repr(hit)


class TestSpearman:
    def test_perfect_correlation(self):
        assert _spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert _spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_partial(self):
        rho = _spearman([1, 2, 3, 4], [10, 30, 20, 40])
        assert -1.0 < rho < 1.0


class TestSuiteSummary:
    def _rows(self):
        return [
            CalibrationRow("a", 1.0, 1.1, 0.05, 0.1, 1.0),
            CalibrationRow("b", 2.0, 1.8, 0.07, 0.05, 0.5),
        ]

    def test_mean_ipc(self):
        summary = suite_summary(self._rows())
        assert summary["mean_ipc"] == pytest.approx(1.45)

    def test_mean_abs_error(self):
        summary = suite_summary(self._rows())
        assert summary["mean_abs_ipc_error"] == pytest.approx((0.1 + 0.1) / 2)

    def test_rank_correlation_of_ordered_rows(self):
        summary = suite_summary(self._rows())
        assert summary["rank_correlation"] == pytest.approx(1.0)


class TestCalibrationRow:
    def test_ipc_error_sign(self):
        fast = CalibrationRow("x", 1.0, 1.2, 0, 0, 0)
        slow = CalibrationRow("x", 1.0, 0.8, 0, 0, 0)
        assert fast.ipc_error > 0 > slow.ipc_error
