"""Property-based tests for the DFS controller."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import DfsConfig
from repro.core.dfs import DfsController

occupancies = st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=300)


@given(occupancies)
@settings(max_examples=50, deadline=None)
def test_level_always_within_bounds(seq):
    controller = DfsController()
    levels = DfsConfig().levels()
    for occ in seq:
        level = controller.update(occ)
        assert levels[0] - 1e-12 <= level <= levels[-1] + 1e-12
        assert level in levels


@given(occupancies, st.integers(0, 9))
@settings(max_examples=30, deadline=None)
def test_cap_is_never_exceeded(seq, cap_index):
    controller = DfsController(max_level_index=cap_index)
    cap = DfsConfig().levels()[cap_index]
    for occ in seq:
        assert controller.update(occ) <= cap + 1e-12


@given(occupancies)
@settings(max_examples=30, deadline=None)
def test_residency_total_equals_updates(seq):
    controller = DfsController()
    for occ in seq:
        controller.update(occ)
    assert controller.residency.total == len(seq)
    fractions = controller.residency_fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


@given(st.floats(0.0, 1.0), st.integers(1, 50))
@settings(max_examples=30, deadline=None)
def test_constant_occupancy_converges(occ, n):
    """Any constant occupancy drives the level to a fixed point."""
    controller = DfsController()
    last = None
    for _ in range(200):
        last = controller.update(occ)
    # After long exposure the level no longer changes.
    assert controller.update(occ) == last
