"""Inter-die vias, buses, wires, NoC router."""

import pytest

from repro.common.config import ChipModel
from repro.floorplan.layouts import build_floorplan
from repro.interconnect.buses import intercore_buses, l2_pillar, total_d2d_vias
from repro.interconnect.noc import RouterModel
from repro.interconnect.vias import D2dViaModel
from repro.interconnect.wires import (
    WIRE_PITCH_MM,
    intercore_wire_length_mm,
    l2_wire_length_mm,
    wire_budget,
)


class TestBuses:
    def test_table4_widths(self):
        widths = {b.name: b.width_bits for b in intercore_buses()}
        assert widths["loads"] == 128
        assert widths["stores"] == 128
        assert widths["branch_outcome"] == 1
        assert widths["register_values"] == 768

    def test_total_intercore_vias_is_1025(self):
        assert sum(b.width_bits for b in intercore_buses()) == 1025

    def test_l2_pillar_is_384_bits(self):
        assert l2_pillar().width_bits == 384

    def test_total_d2d_vias_is_1409(self):
        assert total_d2d_vias() == 1409

    def test_wider_core_needs_more_vias(self):
        assert total_d2d_vias(issue_width=8) > 1409

    def test_placements(self):
        placements = {b.name: b.via_block for b in intercore_buses()}
        assert placements["loads"] == "lsq"
        assert placements["register_values"] == "regfile"
        assert placements["branch_outcome"] == "bpred"


class TestVias:
    def test_capacitance(self):
        model = D2dViaModel()
        assert model.capacitance_f == pytest.approx(0.594e-14)

    def test_per_via_power_matches_paper(self):
        # Paper: ~0.011 mW per via at 65 nm, 2 GHz, 1 V.
        assert D2dViaModel().via_power_w() * 1e3 == pytest.approx(0.0119, abs=0.001)

    def test_total_power_near_15mw(self):
        total = D2dViaModel().total_power_w(1409) * 1e3
        assert total == pytest.approx(15.49, rel=0.1)

    def test_total_area_is_007mm2(self):
        assert D2dViaModel().total_area_mm2(1409) == pytest.approx(0.07, abs=0.002)

    def test_activity_scales_power(self):
        model = D2dViaModel()
        assert model.via_power_w(0.5) == pytest.approx(model.via_power_w() / 2)
        with pytest.raises(ValueError):
            model.via_power_w(1.5)


class TestWires:
    @pytest.fixture(scope="class")
    def plans(self):
        return {
            chip: build_floorplan(chip, checker_power_w=7.0)
            for chip in (ChipModel.TWO_D_A, ChipModel.TWO_D_2A, ChipModel.THREE_D_2A)
        }

    def test_2da_has_no_intercore_wires(self, plans):
        assert intercore_wire_length_mm(plans[ChipModel.TWO_D_A]) == 0.0

    def test_3d_shortens_intercore_wires(self, plans):
        two_d = intercore_wire_length_mm(plans[ChipModel.TWO_D_2A])
        three_d = intercore_wire_length_mm(plans[ChipModel.THREE_D_2A])
        assert three_d < two_d
        # Paper: 7490 mm -> 4279 mm (a ~40% saving).
        assert 0.3 < three_d / two_d < 0.85

    def test_intercore_lengths_near_paper(self, plans):
        assert intercore_wire_length_mm(plans[ChipModel.TWO_D_2A]) == pytest.approx(
            7490, rel=0.25
        )
        assert intercore_wire_length_mm(plans[ChipModel.THREE_D_2A]) == pytest.approx(
            4279, rel=0.25
        )

    def test_l2_metal_ordering(self, plans):
        """2d-a < 3d-2a < 2d-2a, as in Section 3.4."""
        areas = {
            chip: l2_wire_length_mm(plan) * WIRE_PITCH_MM
            for chip, plan in plans.items()
        }
        assert (
            areas[ChipModel.TWO_D_A]
            < areas[ChipModel.THREE_D_2A]
            < areas[ChipModel.TWO_D_2A]
        )

    def test_wire_power_near_paper(self, plans):
        budgets = {chip: wire_budget(plan) for chip, plan in plans.items()}
        assert budgets[ChipModel.TWO_D_A].total_power_w == pytest.approx(5.1, rel=0.15)
        assert budgets[ChipModel.TWO_D_2A].total_power_w == pytest.approx(15.5, rel=0.3)
        assert budgets[ChipModel.THREE_D_2A].total_power_w == pytest.approx(12.1, rel=0.15)

    def test_checker_feed_is_cheap_in_3d(self, plans):
        """Paper: register/load transfer costs only ~1.8 W over 3D."""
        budget = wire_budget(plans[ChipModel.THREE_D_2A])
        assert budget.intercore_power_w < 3.5

    def test_budget_totals_consistent(self, plans):
        budget = wire_budget(plans[ChipModel.THREE_D_2A])
        assert budget.total_length_mm == pytest.approx(
            budget.intercore_length_mm + budget.l2_length_mm
        )
        assert budget.total_metal_area_mm2 == pytest.approx(
            budget.total_length_mm * WIRE_PITCH_MM
        )


class TestRouter:
    def test_hop_latency_is_4_cycles(self):
        assert RouterModel().hop_latency_cycles == 4

    def test_power_range(self):
        router = RouterModel()
        assert router.power_w(0.0) == pytest.approx(0.296 * 0.35)
        assert router.power_w(1.0) == pytest.approx(0.296)
        with pytest.raises(ValueError):
            router.power_w(2.0)

    def test_table2_area(self):
        assert RouterModel().area_mm2 == pytest.approx(0.22)
