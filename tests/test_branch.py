"""Combined branch predictor and BTB."""

import pytest

from repro.common.config import BranchPredictorConfig
from repro.core.branch import BranchPredictor


def test_learns_always_taken_branch():
    predictor = BranchPredictor()
    for _ in range(10):
        predictor.update(0x100, taken=True, target=0x200)
    taken, target = predictor.predict(0x100)
    assert taken and target == 0x200


def test_learns_never_taken_branch():
    predictor = BranchPredictor()
    for _ in range(10):
        predictor.update(0x100, taken=False, target=0x200)
    taken, _ = predictor.predict(0x100)
    assert not taken


def test_btb_miss_counts_as_mispredict():
    predictor = BranchPredictor()
    # Train direction via a different site so pc 0x300's BTB entry is cold.
    predictor.update(0x300, taken=True, target=0x400)   # first: cold BTB
    assert predictor.mispredicts >= 1


def test_steady_state_accuracy_on_biased_branch():
    predictor = BranchPredictor()
    import random
    rng = random.Random(3)
    mispredicts = 0
    for i in range(2000):
        taken = rng.random() < 0.9
        mispredicts += predictor.update(0x80, taken, 0x400)
    assert mispredicts / 2000 < 0.2


def test_pattern_branch_learned_by_history():
    predictor = BranchPredictor()
    pattern = [True, True, False]   # loop of trip count 3
    mispredicts = 0
    for i in range(3000):
        taken = pattern[i % 3]
        mispredicts += predictor.update(0x44, taken, 0x999)
    # The 2-level component should learn the repeating pattern well.
    assert mispredicts / 3000 < 0.1


def test_random_branch_is_hard():
    predictor = BranchPredictor()
    import random
    rng = random.Random(5)
    mispredicts = 0
    for _ in range(2000):
        mispredicts += predictor.update(0x40, rng.random() < 0.5, 0x900)
    assert 0.3 < mispredicts / 2000 < 0.7


def test_btb_replacement():
    cfg = BranchPredictorConfig(btb_sets=1, btb_ways=2)
    predictor = BranchPredictor(cfg)
    for pc in (0x10, 0x20, 0x30):   # three taken branches, two ways
        for _ in range(4):
            predictor.update(pc, True, pc + 0x100)
    # 0x10 was evicted; its next prediction lacks a target.
    _, target = predictor.predict(0x10)
    assert target is None
    _, target = predictor.predict(0x30)
    assert target == 0x130


def test_statistics():
    predictor = BranchPredictor()
    for _ in range(5):
        predictor.update(0x10, True, 0x20)
    assert predictor.lookups == 5
    assert 0.0 <= predictor.misprediction_rate <= 1.0


def test_zero_lookups_rate():
    assert BranchPredictor().misprediction_rate == 0.0
