"""Units and conversions."""

import pytest

from repro.common import units


def test_length_constants_are_consistent():
    assert units.MILLIMETRE == pytest.approx(1e-3)
    assert units.MICROMETRE == pytest.approx(1e-6)
    assert units.NANOMETRE == pytest.approx(1e-9)
    assert units.MILLIMETRE / units.MICROMETRE == pytest.approx(1000.0)


def test_area_round_trip():
    assert units.m2_to_mm2(units.mm2_to_m2(52.56)) == pytest.approx(52.56)


def test_mm2_to_m2():
    assert units.mm2_to_m2(1.0) == pytest.approx(1e-6)


def test_temperature_round_trip():
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(47.0)) == pytest.approx(47.0)
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)


def test_frequency_constants():
    assert 2 * units.GIGAHERTZ == pytest.approx(2e9)
    assert units.GIGAHERTZ / units.MEGAHERTZ == pytest.approx(1000.0)


def test_data_constants():
    assert units.MEGABYTE == 1024 * units.KILOBYTE
