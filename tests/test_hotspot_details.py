"""Rasterization and override details of the chip thermal model."""

import numpy as np
import pytest

from repro.common.config import ChipModel, ThermalConfig
from repro.floorplan.layouts import build_floorplan
from repro.thermal.hotspot import ChipThermalModel


@pytest.fixture(scope="module")
def model():
    return ChipThermalModel(build_floorplan(ChipModel.TWO_D_A, wire_power_w=5.0))


def test_rasterization_conserves_power(model):
    """Every block's power lands fully on the grid."""
    cfg = model.config
    maps = {}
    n_cells = cfg.grid_rows * cfg.grid_cols
    total_expected = model.floorplan.total_power_w()
    # Rebuild the power map exactly as solve() does.
    power = np.zeros(n_cells)
    for block in model.floorplan.blocks:
        if block.power_w <= 0:
            continue
        _die, idx, frac = model._block_cells[block.name]
        np.add.at(power, idx, block.power_w * frac)
    distributed = sum(model.floorplan.distributed_power_w.values())
    assert power.sum() + distributed == pytest.approx(total_expected, rel=1e-6)


def test_block_fractions_sum_to_one(model):
    for block in model.floorplan.blocks:
        _die, _idx, frac = model._block_cells[block.name]
        assert frac.sum() == pytest.approx(1.0, rel=1e-6), block.name


def test_unknown_override_is_ignored(model):
    base = model.solve().peak_c
    with_unknown = model.solve({"not_a_block": 100.0}).peak_c
    assert with_unknown == pytest.approx(base)


def test_zero_power_override_cools(model):
    base = model.solve().peak_c
    cooled = model.solve({"int_exec": 0.0, "regfile": 0.0}).peak_c
    assert cooled < base


def test_block_temps_cover_every_block(model):
    result = model.solve()
    names = {b.name for b in model.floorplan.blocks}
    assert set(result.block_peak_c) == names
    assert set(result.block_mean_c) == names


def test_layer_grids_shape(model):
    result = model.solve()
    cfg = model.config
    for grid in result.layer_grids.values():
        assert grid.shape == (cfg.grid_rows, cfg.grid_cols)


def test_hottest_block_consistent(model):
    result = model.solve()
    name = result.hottest_block()
    assert result.block_peak_c[name] == max(result.block_peak_c.values())
