"""The synthetic trace generator."""

import pytest

from repro.core.branch import BranchPredictor
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceGenerator, generate_trace
from repro.workloads.profiles import get_profile

N = 20_000


@pytest.fixture(scope="module")
def gzip_trace():
    return generate_trace(get_profile("gzip"), N, seed=5)


def test_trace_length(gzip_trace):
    assert len(gzip_trace) == N


def test_sequence_numbers_are_contiguous(gzip_trace):
    assert [i.seq for i in gzip_trace] == list(range(N))


def test_determinism():
    a = generate_trace(get_profile("mcf"), 2000, seed=9)
    b = generate_trace(get_profile("mcf"), 2000, seed=9)
    for x, y in zip(a, b):
        assert (x.op, x.dst, x.src1, x.src2, x.pc, x.address, x.taken) == (
            y.op, y.dst, y.src1, y.src2, y.pc, y.address, y.taken
        )


def test_seed_changes_trace():
    a = generate_trace(get_profile("mcf"), 2000, seed=1)
    b = generate_trace(get_profile("mcf"), 2000, seed=2)
    assert any(x.address != y.address for x, y in zip(a, b))


def test_incremental_generation_matches_bulk():
    gen = TraceGenerator(get_profile("gzip"), seed=5)
    first = gen.generate(1000)
    second = gen.generate(1000)
    bulk = generate_trace(get_profile("gzip"), 2000, seed=5)
    combined = first + second
    for x, y in zip(combined, bulk):
        assert (x.op, x.address, x.src1) == (y.op, y.address, y.src1)


def test_instruction_mix_matches_profile(gzip_trace):
    profile = get_profile("gzip")
    loads = sum(1 for i in gzip_trace if i.op is OpClass.LOAD)
    stores = sum(1 for i in gzip_trace if i.op is OpClass.STORE)
    branches = sum(1 for i in gzip_trace if i.op is OpClass.BRANCH)
    assert loads / N == pytest.approx(profile.frac_load, abs=0.01)
    assert stores / N == pytest.approx(profile.frac_store, abs=0.01)
    assert branches / N == pytest.approx(profile.frac_branch, abs=0.01)


def test_memory_ops_have_addresses(gzip_trace):
    for instr in gzip_trace:
        if instr.op.is_memory:
            assert instr.address > 0 or instr.address == 0
            assert instr.address % 8 == 0


def test_fp_profile_generates_fp_ops():
    trace = generate_trace(get_profile("swim"), 5000, seed=3)
    fp = sum(1 for i in trace if i.op.is_fp)
    assert fp / len(trace) > 0.3


def test_int_profile_generates_no_fp():
    trace = generate_trace(get_profile("gzip"), 5000, seed=3)
    assert all(not i.op.is_fp for i in trace)


def test_branch_sites_are_reused(gzip_trace):
    pcs = {i.pc for i in gzip_trace if i.is_branch}
    branches = sum(1 for i in gzip_trace if i.is_branch)
    assert branches > 10 * len(pcs)  # hot sites executed many times


def test_pointer_chase_creates_load_dependences():
    profile = get_profile("mcf")
    trace = generate_trace(profile, 10_000, seed=4)
    last_load_dst = -1
    chained = 0
    loads = 0
    for instr in trace:
        if instr.op is OpClass.LOAD:
            loads += 1
            if instr.src1 == last_load_dst and last_load_dst >= 0:
                chained += 1
            last_load_dst = instr.dst
    assert chained / loads > profile.pointer_chase_fraction * 0.5


def test_pretrain_predictor_reduces_mispredicts():
    profile = get_profile("gzip")
    trace = generate_trace(profile, 20_000, seed=11)

    cold = BranchPredictor()
    for i in trace:
        if i.is_branch:
            cold.update(i.pc, i.taken, i.target)
    cold_rate = cold.misprediction_rate

    warm = BranchPredictor()
    TraceGenerator(profile, seed=11).pretrain_predictor(warm)
    for i in trace:
        if i.is_branch:
            warm.update(i.pc, i.taken, i.target)
    assert warm.misprediction_rate < cold_rate


def test_cold_region_streams_new_lines():
    profile = get_profile("mcf")
    trace = generate_trace(profile, 50_000, seed=2)
    cold = [i.address for i in trace if i.op.is_memory and i.address >= 0x4000_0000]
    assert len(cold) > 0
    assert len(set(a >> 6 for a in cold)) == len(cold)  # every access a new line
