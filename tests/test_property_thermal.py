"""Property-based tests for the thermal solver's physics invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.thermal.grid import GridThermalModel
from repro.thermal.materials import Layer

_ROWS = _COLS = 8


def _model():
    layers = [
        Layer("base", 1e-3, 1.0 / 400.0),
        Layer("active", 1e-6, 0.01, has_power=True),
    ]
    return GridThermalModel(
        layers=layers, width_m=4e-3, height_m=4e-3, rows=_ROWS, cols=_COLS,
        sink_r_k_mm2_per_w=8.0, secondary_r_k_mm2_per_w=1e5, ambient_c=47.0,
    )


_MODEL = _model()

power_maps = arrays(
    dtype=float,
    shape=(_ROWS, _COLS),
    elements=st.floats(0.0, 0.5, allow_nan=False),
)


@given(power_maps)
@settings(max_examples=30, deadline=None)
def test_temperatures_never_below_ambient(power):
    temps = _MODEL.solve({"active": power})["active"]
    assert np.all(temps >= 47.0 - 1e-9)


@given(power_maps)
@settings(max_examples=30, deadline=None)
def test_energy_balance(power):
    """Steady state: heat leaving through the boundaries equals heat in."""
    temps = _MODEL.solve({"active": power})
    bottom = temps["base"]
    top = temps["active"]
    q_out = (
        _MODEL._g_bot * (bottom - 47.0).sum()
        + _MODEL._g_top * (top - 47.0).sum()
    )
    assert q_out == (
        __import__("pytest").approx(power.sum(), rel=1e-6, abs=1e-9)
    )


@given(power_maps, power_maps)
@settings(max_examples=20, deadline=None)
def test_monotonicity_in_power(p1, p2):
    """Adding power anywhere never cools any cell."""
    t1 = _MODEL.solve({"active": p1})["active"]
    t2 = _MODEL.solve({"active": p1 + p2})["active"]
    assert np.all(t2 >= t1 - 1e-9)


@given(power_maps, st.floats(0.1, 5.0))
@settings(max_examples=20, deadline=None)
def test_linearity_in_scale(power, scale):
    t1 = _MODEL.solve({"active": power})["active"] - 47.0
    t2 = _MODEL.solve({"active": power * scale})["active"] - 47.0
    assert np.allclose(t2, t1 * scale, atol=1e-7)
