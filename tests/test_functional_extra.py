"""Additional functional-RMT behaviours: queue flows, state convergence."""

import pytest

from repro.core.faults import FaultInjector, FaultRates
from repro.core.functional import FunctionalRmt
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import generate_trace
from repro.workloads.profiles import get_profile


def hand_trace():
    """A tiny hand-built program exercising every instruction class."""
    return [
        Instruction(0, OpClass.IALU, dst=1, src1=30, src2=30, pc=0),
        Instruction(1, OpClass.IMUL, dst=2, src1=1, src2=30, pc=4),
        Instruction(2, OpClass.LOAD, dst=3, src1=1, src2=-1, pc=8, address=0x100),
        Instruction(3, OpClass.FALU, dst=33, src1=62, src2=62, pc=12),
        Instruction(4, OpClass.STORE, src1=2, src2=1, pc=16, address=0x108),
        Instruction(5, OpClass.BRANCH, src1=1, src2=2, pc=20, taken=True, target=0),
        Instruction(6, OpClass.STORE, src1=3, src2=1, pc=24, address=0x110),
    ]


class TestHandTrace:
    def test_runs_clean(self):
        result = FunctionalRmt().run(hand_trace())
        assert result.mismatches_detected == 0
        assert len(result.drained_stores) == 2

    def test_store_values_derive_from_computation(self):
        rmt = FunctionalRmt()
        result = rmt.run(hand_trace())
        addresses = [a for a, _ in result.drained_stores]
        assert addresses == [0x108, 0x110]
        # The second store writes the loaded value.
        from repro.isa.instruction import load_value_for_address
        assert result.drained_stores[1][1] == load_value_for_address(0x100)

    def test_queue_drain_is_complete(self):
        rmt = FunctionalRmt()
        rmt.run(hand_trace())
        assert rmt.rvq.is_empty
        assert rmt.lvq.is_empty
        assert rmt.boq.is_empty
        assert rmt.stb.is_empty

    def test_queue_push_counts(self):
        rmt = FunctionalRmt()
        rmt.run(hand_trace())
        assert rmt.rvq.total_pushes == 7      # every instruction
        assert rmt.lvq.total_pushes == 1      # one load
        assert rmt.boq.total_pushes == 1      # one branch
        assert rmt.stb.total_pushes == 2      # two stores


class TestStateConvergence:
    def test_regfiles_converge_even_under_faults(self):
        trace = generate_trace(get_profile("twolf"), 6000, seed=41)
        injector = FaultInjector(
            leading=FaultRates(soft_error=1e-3, timing_error=1e-3), seed=41
        )
        rmt = FunctionalRmt(injector=injector)
        result = rmt.run(trace)
        assert result.recoveries > 0
        # After the full run every recovery has re-synchronised the cores.
        clean = FunctionalRmt()
        clean.run(generate_trace(get_profile("twolf"), 6000, seed=41))
        assert rmt.trailing_regs == clean.trailing_regs

    def test_result_object_reports_final_regfile(self):
        trace = generate_trace(get_profile("gzip"), 1000, seed=2)
        rmt = FunctionalRmt()
        result = rmt.run(trace)
        assert result.final_trailing_regfile == rmt.trailing_regs


class TestWorkloadSweep:
    @pytest.mark.parametrize("name", ["eon", "lucas", "galgel", "vortex"])
    def test_every_profile_class_is_protocol_clean(self, name):
        trace = generate_trace(get_profile(name), 3000, seed=8)
        result = FunctionalRmt().run(trace)
        assert result.mismatches_detected == 0
        assert result.silent_corruptions == 0
