"""Property-based tests for the trace generator and predictor."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.branch import BranchPredictor
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceGenerator, generate_trace
from repro.workloads.profiles import spec2k_suite

_PROFILES = spec2k_suite()


@given(
    profile=st.sampled_from(_PROFILES),
    seed=st.integers(0, 2**32 - 1),
    count=st.integers(1, 2000),
)
@settings(max_examples=25, deadline=None)
def test_trace_well_formed_for_any_profile_and_seed(profile, seed, count):
    trace = generate_trace(profile, count, seed=seed)
    assert len(trace) == count
    for instr in trace:
        assert instr.op in OpClass
        if instr.writes_register:
            assert 0 <= instr.dst < 64
            assert instr.op.is_fp == (instr.dst >= 32)
        else:
            assert instr.dst == -1
        if instr.op.is_memory:
            assert instr.address % 8 == 0
        if instr.is_branch:
            assert instr.target >= 0


@given(
    profile=st.sampled_from(_PROFILES),
    seed=st.integers(0, 1000),
    split=st.integers(1, 999),
)
@settings(max_examples=15, deadline=None)
def test_chunked_generation_is_split_invariant(profile, seed, split):
    bulk = generate_trace(profile, 1000, seed=seed)
    gen = TraceGenerator(profile, seed=seed)
    combined = gen.generate(split) + gen.generate(1000 - split)
    for x, y in zip(combined, bulk):
        assert (x.op, x.dst, x.src1, x.src2, x.address, x.pc, x.taken) == (
            y.op, y.dst, y.src1, y.src2, y.address, y.pc, y.taken
        )


@given(
    outcomes=st.lists(st.booleans(), min_size=1, max_size=500),
)
@settings(max_examples=30, deadline=None)
def test_predictor_statistics_are_consistent(outcomes):
    predictor = BranchPredictor()
    mispredicts = 0
    for taken in outcomes:
        mispredicts += predictor.update(0x40, taken, 0x80)
    assert predictor.lookups == len(outcomes)
    assert predictor.mispredicts == mispredicts
    assert 0.0 <= predictor.misprediction_rate <= 1.0


@given(st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_predictor_prediction_is_pure(pc):
    predictor = BranchPredictor()
    predictor.update(pc, True, 0x44)
    first = predictor.predict(pc)
    second = predictor.predict(pc)
    assert first == second
