"""Property-based tests: the RMT protocol under arbitrary single faults.

The central claim of Section 2 — a single transient fault anywhere in the
datapath is detected, and recovery preserves architectural correctness —
is checked here for randomly chosen fault sites, instructions, and bit
positions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import Fault, FaultKind, FaultSite, apply_bit_flips
from repro.core.functional import FunctionalRmt
from repro.isa.trace import generate_trace
from repro.workloads.profiles import get_profile

_TRACE = generate_trace(get_profile("vpr"), 3000, seed=17)
_GOLDEN = FunctionalRmt().run(_TRACE).store_stream


class _OneShot:
    def __init__(self, site, seq, bits):
        trailing = (FaultSite.TRAILING_RESULT, FaultSite.TRAILING_REGFILE)
        self.core = "trailing" if site in trailing else "leading"
        self.site, self.seq, self.bits = site, seq, bits
        self.injected = []

    def faults_for(self, seq, core):
        if seq == self.seq and core == self.core:
            fault = Fault(seq, FaultKind.SOFT_ERROR, self.site, self.bits)
            self.injected.append(fault)
            return [fault]
        return []


@given(
    site=st.sampled_from(list(FaultSite)),
    seq=st.integers(0, len(_TRACE) - 1),
    bit=st.integers(0, 63),
)
@settings(max_examples=60, deadline=None)
def test_any_single_bit_fault_is_architecturally_safe(site, seq, bit):
    injector = _OneShot(site, seq, (bit,))
    result = FunctionalRmt(injector=injector).run(_TRACE)
    assert result.store_stream == _GOLDEN
    assert result.silent_corruptions == 0


@given(
    site=st.sampled_from(list(FaultSite)),
    seq=st.integers(0, len(_TRACE) - 1),
    bits=st.tuples(st.integers(0, 31), st.integers(32, 63)),
)
@settings(max_examples=40, deadline=None)
def test_any_double_bit_fault_is_architecturally_safe(site, seq, bits):
    injector = _OneShot(site, seq, bits)
    result = FunctionalRmt(injector=injector).run(_TRACE)
    assert result.store_stream == _GOLDEN


@given(value=st.integers(0, 2**64 - 1), bits=st.sets(st.integers(0, 63), min_size=1, max_size=8))
def test_bit_flips_are_involutive(value, bits):
    flipped = apply_bit_flips(value, tuple(bits))
    assert flipped != value
    assert apply_bit_flips(flipped, tuple(bits)) == value
    assert 0 <= flipped < 2**64
