"""Property-based tests for the analytical models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.pipeline import PipelinePowerModel
from repro.power.wattch import CorePowerModel, TURN_OFF_FACTOR, l2_bank_power_w
from repro.reliability.ser import mbu_probability
from repro.reliability.timing import TimingErrorModel


@given(st.floats(0.05, 1.0), st.floats(0.05, 1.0))
@settings(max_examples=50)
def test_timing_error_rate_monotone_in_frequency(f1, f2):
    model = TimingErrorModel()
    lo, hi = sorted((f1, f2))
    assert model.error_rate_per_instruction(lo) <= (
        model.error_rate_per_instruction(hi) + 1e-15
    )


@given(st.floats(0.05, 1.0))
@settings(max_examples=50)
def test_timing_error_rate_is_probability(f):
    rate = TimingErrorModel().error_rate_per_instruction(f)
    assert 0.0 <= rate <= 1.0


@given(st.floats(0.05, 1.0))
@settings(max_examples=30)
def test_slack_plus_delay_consistent(f):
    model = TimingErrorModel()
    slack = model.slack_fraction(f)
    assert 0.0 <= slack < 1.0
    # Slack shrinks as frequency rises.
    if f < 0.95:
        assert model.slack_fraction(f + 0.05) <= slack + 1e-12


@given(st.floats(4.0, 30.0), st.floats(4.0, 30.0))
@settings(max_examples=50)
def test_pipeline_power_monotone_in_depth(d1, d2):
    model = PipelinePowerModel()
    shallow, deep = sorted((d1, d2), reverse=True)
    assert model.total_relative(deep) >= model.total_relative(shallow) - 1e-12


@given(st.floats(0.0, 100.0), st.floats(0.0, 100.0))
@settings(max_examples=50)
def test_mbu_probability_monotone_decreasing(q1, q2):
    lo, hi = sorted((q1, q2))
    assert mbu_probability(hi) <= mbu_probability(lo) + 1e-15


@given(st.floats(0.0, 1.0), st.floats(1.0, 60.0))
@settings(max_examples=50)
def test_checker_power_bounds(frequency, nominal):
    model = CorePowerModel()
    if frequency == 0.0:
        frequency = 0.01
    power = model.checker_power(nominal, frequency)
    assert nominal * 0.2 <= power <= nominal + 1e-9


@given(st.integers(0, 10_000), st.integers(1, 10_000))
@settings(max_examples=50)
def test_l2_bank_power_bounds(accesses, cycles):
    power = l2_bank_power_w(accesses, cycles)
    assert 0.376 <= power <= 0.376 + 0.732 + 1e-12


class _FakeRun:
    """Minimal stand-in for LeadingRunResult."""

    def __init__(self, ipc, cycles=1000):
        self.ipc = ipc
        self.cycles = cycles
        per_class = int(ipc * cycles / 7)
        self.op_counts = {
            c: per_class for c in
            ("ialu", "imul", "falu", "fmul", "load", "store", "branch")
        }


@given(st.floats(0.0, 4.0), st.floats(0.0, 4.0))
@settings(max_examples=40)
def test_core_power_monotone_in_ipc(ipc1, ipc2):
    model = CorePowerModel()
    lo, hi = sorted((ipc1, ipc2))
    p_lo = model.core_power(_FakeRun(lo)).total_w
    p_hi = model.core_power(_FakeRun(hi)).total_w
    assert p_hi >= p_lo - 1e-9


@given(st.floats(0.0, 4.0))
@settings(max_examples=40)
def test_core_power_floor_is_turnoff(ipc):
    model = CorePowerModel(peak_power_w=50.0)
    total = model.core_power(_FakeRun(ipc)).total_w
    assert total >= 50.0 * TURN_OFF_FACTOR - 1e-9
    assert total <= 50.0 + 1e-9
