"""Recovery-cost and error-performance models."""

import pytest

from repro.experiments.error_performance import (
    RecoveryCostModel,
    checker_operating_point_comparison,
    error_performance,
)


class TestRecoveryCost:
    def test_penalty_includes_slack_drain(self):
        cost = RecoveryCostModel(slack_instructions=200)
        penalty = cost.penalty_cycles(leading_ipc=2.0)
        assert penalty >= 200 / 2.0

    def test_slower_core_pays_more_per_recovery(self):
        cost = RecoveryCostModel()
        assert cost.penalty_cycles(0.5) > cost.penalty_cycles(2.0)


class TestErrorPerformance:
    def test_zero_errors_zero_loss(self):
        result = error_performance(0.0)
        assert result.throughput_fraction == pytest.approx(1.0)
        assert result.slowdown == 0.0

    def test_loss_monotone_in_rate(self):
        rates = [1e-8, 1e-6, 1e-4, 1e-2]
        losses = [error_performance(r).slowdown for r in rates]
        assert losses == sorted(losses)

    def test_tiny_rates_are_free(self):
        assert error_performance(1e-12).slowdown < 1e-9

    def test_heavy_rates_are_crippling(self):
        assert error_performance(1e-2).slowdown > 0.5

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            error_performance(-1.0)

    def test_recoveries_per_million(self):
        assert error_performance(2e-6).recoveries_per_million == pytest.approx(2.0)


class TestOperatingPoints:
    def test_throttled_checker_is_essentially_free(self):
        points = checker_operating_point_comparison()
        assert points["dfs-throttled"].slowdown < 1e-6

    def test_full_speed_checker_pays_for_thin_margins(self):
        points = checker_operating_point_comparison()
        assert points["full-speed"].slowdown > points["dfs-throttled"].slowdown

    def test_particle_strikes_are_negligible(self):
        points = checker_operating_point_comparison()
        assert points["particle-strikes-only"].slowdown < 1e-3
