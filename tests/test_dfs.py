"""The DFS controller."""

import pytest

from repro.common.config import DfsConfig
from repro.core.dfs import DfsController


def test_starts_at_peak():
    controller = DfsController()
    assert controller.level == pytest.approx(1.0)


def test_scales_down_on_low_occupancy():
    controller = DfsController()
    level = controller.level
    new = controller.update(0.0)
    assert new < level


def test_scales_up_on_high_occupancy():
    controller = DfsController()
    for _ in range(5):
        controller.update(0.0)   # drop a few levels
    low = controller.level
    new = controller.update(1.0)
    assert new > low


def test_up_step_is_larger_than_down_step():
    cfg = DfsConfig()
    assert cfg.up_step > cfg.down_step


def test_band_holds_level():
    controller = DfsController()
    controller.update(0.0)
    held = controller.level
    mid = (DfsConfig().low_occupancy_threshold + DfsConfig().high_occupancy_threshold) / 2
    assert controller.update(mid) == held


def test_never_below_min_level():
    controller = DfsController()
    for _ in range(100):
        controller.update(0.0)
    assert controller.level == pytest.approx(DfsConfig().levels()[0])


def test_never_above_cap():
    controller = DfsController(max_level_index=6)   # cap at 0.7
    for _ in range(100):
        controller.update(1.0)
    assert controller.level == pytest.approx(0.7)


def test_cap_validation():
    with pytest.raises(ValueError):
        DfsController(max_level_index=99)


def test_residency_histogram_counts_intervals():
    controller = DfsController()
    for _ in range(10):
        controller.update(0.3)
    assert controller.residency.total == 10


def test_residency_fractions_sum_to_one():
    controller = DfsController()
    for occ in (0.0, 0.0, 1.0, 0.3, 0.3, 0.0):
        controller.update(occ)
    assert sum(controller.residency_fractions().values()) == pytest.approx(1.0)


def test_mean_and_mode():
    controller = DfsController()
    for _ in range(20):
        controller.update(0.3)   # hold at peak... it starts at 1.0 and stays
    assert controller.modal_frequency_fraction() == pytest.approx(1.0)
    assert controller.mean_frequency_fraction() == pytest.approx(1.0)


def test_oscillation_settles_in_band():
    """A consumer/producer imbalance drives the level to an equilibrium."""
    controller = DfsController()
    # Synthetic plant: occupancy grows when level is too low, drains when
    # high.  Equilibrium at level 0.6.
    occupancy = 0.5
    for _ in range(200):
        level = controller.update(occupancy)
        occupancy = min(1.0, max(0.0, occupancy + 0.3 * (0.6 - level)))
    assert 0.4 <= controller.level <= 0.8
