"""CACTI-lite SRAM estimates."""

import pytest

from repro.cache.cacti import CactiModel, logic_area_scale


@pytest.fixture(scope="module")
def model():
    return CactiModel()


def test_anchor_matches_table2(model):
    bank = model.estimate_bank()
    assert bank.area_mm2 == pytest.approx(5.0)
    assert bank.dynamic_power_w_per_access == pytest.approx(0.732)
    assert bank.static_power_w == pytest.approx(0.376)
    assert bank.access_cycles == 6


def test_90nm_bank_is_bigger_leakier_per_dynamic(model):
    b65 = model.estimate_bank(tech_nm=65)
    b90 = model.estimate_bank(tech_nm=90)
    assert b90.area_mm2 > b65.area_mm2
    assert b90.dynamic_power_w_per_access > b65.dynamic_power_w_per_access
    assert b90.static_power_w < b65.static_power_w  # old process leaks less


def test_90nm_access_takes_one_extra_cycle(model):
    # Section 4: "The access time for each L2 cache bank in the older
    # process increases by a single cycle."
    assert model.estimate_bank(tech_nm=90).access_cycles == 7


def test_section4_area_budget(model):
    """The 65 nm upper die holds checker + 9 banks; at 90 nm, checker + 5."""
    die_area = 7.25 * 7.25
    checker_90 = 5.0 * logic_area_scale(90)
    bank_90 = model.estimate_bank(tech_nm=90).area_mm2
    banks_fitting = int((die_area - checker_90) / bank_90)
    assert banks_fitting == 5


def test_logic_area_scale_is_quadratic():
    assert logic_area_scale(90) == pytest.approx((90 / 65) ** 2)
    assert logic_area_scale(65) == pytest.approx(1.0)


def test_size_scaling(model):
    half = model.estimate_bank(size_bytes=512 * 1024)
    assert half.area_mm2 == pytest.approx(2.5)
    assert half.dynamic_power_w_per_access < 0.732
    assert half.static_power_w == pytest.approx(0.188)


def test_banks_fitting_area(model):
    assert model.banks_fitting_area(45.0) == 9
    assert model.banks_fitting_area(45.0, tech_nm=90) < 9


def test_invalid_inputs(model):
    with pytest.raises(ValueError):
        model.estimate_bank(size_bytes=0)
    with pytest.raises(KeyError):
        model.estimate_bank(tech_nm=32)
