"""Power models: Wattch-lite, ITRS scaling, pipeline depth."""

import pytest

from repro.common.config import ChipModel
from repro.experiments.runner import simulate_leading
from repro.power.itrs import (
    PUBLISHED_TABLE8,
    TECH_NODES,
    VARIABILITY_TABLE,
    dynamic_power_ratio,
    leakage_power_ratio,
    relative_gate_delay,
)
from repro.power.pipeline import PUBLISHED_TABLE5, PipelinePowerModel
from repro.power.wattch import (
    CorePowerModel,
    TURN_OFF_FACTOR,
    l2_bank_power_w,
    rmt_power_overhead,
    router_power_w,
)


class TestItrsData:
    def test_table7_rows(self):
        assert TECH_NODES[90].voltage_v == pytest.approx(1.2)
        assert TECH_NODES[65].gate_length_nm == pytest.approx(25.0)
        assert TECH_NODES[45].leakage_ua_per_um == pytest.approx(0.28)

    def test_table6_rows(self):
        assert VARIABILITY_TABLE[80].vth_variability == pytest.approx(0.26)
        assert VARIABILITY_TABLE[32].vth_variability == pytest.approx(0.58)
        assert VARIABILITY_TABLE[45].circuit_performance_variability == pytest.approx(0.50)

    def test_variability_worsens_with_scaling(self):
        entries = [VARIABILITY_TABLE[n] for n in (80, 65, 45, 32)]
        vths = [e.vth_variability for e in entries]
        assert vths == sorted(vths)


class TestTable8Derivation:
    def test_dynamic_ratios_match_published(self):
        for (old, new), (dyn, _leak) in PUBLISHED_TABLE8.items():
            assert dynamic_power_ratio(old, new) == pytest.approx(dyn, abs=0.015)

    def test_leakage_90_ratios_match_published(self):
        assert leakage_power_ratio(90, 65) == pytest.approx(0.40, abs=0.01)
        assert leakage_power_ratio(90, 45) == pytest.approx(0.44, abs=0.01)

    def test_leakage_65_45_close_to_published(self):
        # The paper prints 0.99; the straight derivation gives 1.09.
        assert leakage_power_ratio(65, 45) == pytest.approx(0.99, abs=0.15)

    def test_gate_delay_anchor(self):
        # 500 ps at 65 nm -> 714 ps at 90 nm (Section 4).
        assert 500.0 * relative_gate_delay(90, 65) == pytest.approx(714.0, abs=1.0)

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            dynamic_power_ratio(32, 65)


class TestPipelinePower:
    def test_published_table5(self):
        assert PUBLISHED_TABLE5[18].dynamic_relative == 1.0
        assert PUBLISHED_TABLE5[14].dynamic_relative == 1.65
        assert PUBLISHED_TABLE5[10].dynamic_relative == 1.76
        assert PUBLISHED_TABLE5[6].dynamic_relative == 3.45
        assert PUBLISHED_TABLE5[6].total_relative == pytest.approx(3.98)

    def test_model_monotonic_in_depth(self):
        model = PipelinePowerModel()
        totals = [model.total_relative(d) for d in (18, 14, 10, 6)]
        assert totals == sorted(totals)

    def test_model_baseline_normalised(self):
        model = PipelinePowerModel()
        assert model.dynamic_relative(18) == pytest.approx(1.0)
        assert model.leakage_relative(18) == pytest.approx(0.30)

    def test_deep_pipe_power_explodes(self):
        """The paper's conclusion: 6 FO4 costs ~3-4x the baseline power."""
        model = PipelinePowerModel()
        assert model.total_relative(6) > 3.0

    def test_stage_count(self):
        model = PipelinePowerModel(total_logic_fo4=90, latch_overhead_fo4=3)
        assert model.stages(18) == pytest.approx(6.0)
        assert model.stages(6) == pytest.approx(30.0)

    def test_too_shallow_stage_rejected(self):
        model = PipelinePowerModel()
        with pytest.raises(ValueError):
            model.stages(3.0)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            PipelinePowerModel(total_logic_fo4=2.0, latch_overhead_fo4=3.0)

    def test_table_helper(self):
        rows = PipelinePowerModel().table()
        assert [r.fo4_per_stage for r in rows] == [18, 14, 10, 6]


class TestWattch:
    @pytest.fixture(scope="class")
    def gzip_run(self):
        return simulate_leading("gzip", ChipModel.TWO_D_A)

    def test_activities_bounded(self, gzip_run):
        for activity in CorePowerModel().unit_activities(gzip_run).values():
            assert 0.0 <= activity <= 1.0

    def test_core_power_in_range(self, gzip_run):
        breakdown = CorePowerModel().core_power(gzip_run)
        assert 15.0 < breakdown.total_w < 52.0

    def test_turnoff_floor(self):
        """Even an idle unit dissipates the cc3 turn-off fraction."""
        model = CorePowerModel(peak_power_w=100.0)

        class Idle:
            op_counts = {c: 0 for c in
                         ("ialu", "imul", "falu", "fmul", "load", "store", "branch")}
            cycles = 1000
            ipc = 0.0

        breakdown = model.core_power(Idle())
        # clock_other stays fully on; everything else at the 0.2 floor.
        assert breakdown.total_w >= 100.0 * TURN_OFF_FACTOR

    def test_int_program_has_cold_fp_unit(self, gzip_run):
        per_unit = CorePowerModel().core_power(gzip_run).per_unit_w
        activities = CorePowerModel().unit_activities(gzip_run)
        assert activities["fp_exec"] == 0.0
        assert per_unit["fp_exec"] > 0.0  # turn-off floor

    def test_checker_power_scales_with_frequency(self):
        model = CorePowerModel()
        full = model.checker_power(15.0, 1.0)
        slow = model.checker_power(15.0, 0.5)
        assert full == pytest.approx(15.0)
        assert slow < full
        assert slow > 15.0 * 0.25  # leakage floor survives


class TestHelpers:
    def test_l2_bank_power(self):
        assert l2_bank_power_w(0, 1000) == pytest.approx(0.376)
        busy = l2_bank_power_w(1000, 1000)
        assert busy == pytest.approx(0.376 + 0.732)

    def test_router_power(self):
        assert router_power_w(6) == pytest.approx(6 * 0.296)

    def test_rmt_overhead_quote(self):
        """Figure 1 summary: RMT can impose < 10% power overhead at the
        operating point of a DFS-throttled low-power checker."""
        # 7 W checker at ~0.6 frequency with leakage floor: about 5 W.
        checker = CorePowerModel().checker_power(7.0, 0.6)
        chip_power = 35.0 + 6 * 0.426 + 5.1 + 1.78  # core+banks+wires+routers
        assert rmt_power_overhead(chip_power, checker) < 0.20

    def test_rmt_overhead_validation(self):
        with pytest.raises(ValueError):
            rmt_power_overhead(0.0, 7.0)
