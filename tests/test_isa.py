"""Op classes, instructions, the synthetic ALU, and functional units."""

import pytest

from repro.isa.instruction import (
    MASK64,
    Instruction,
    compute_result,
    load_value_for_address,
)
from repro.isa.opcodes import EXECUTION_LATENCY, FunctionalUnitPool, OpClass


class TestOpClass:
    def test_memory_classification(self):
        assert OpClass.LOAD.is_memory and OpClass.STORE.is_memory
        assert not OpClass.IALU.is_memory

    def test_fp_classification(self):
        assert OpClass.FALU.is_fp and OpClass.FMUL.is_fp
        assert not OpClass.IMUL.is_fp

    def test_register_writers(self):
        assert OpClass.IALU.writes_register
        assert OpClass.LOAD.writes_register
        assert not OpClass.STORE.writes_register
        assert not OpClass.BRANCH.writes_register

    def test_all_classes_have_latency(self):
        for op in OpClass:
            assert EXECUTION_LATENCY[op] >= 1


class TestSyntheticValues:
    def test_load_value_is_deterministic(self):
        assert load_value_for_address(0x1234) == load_value_for_address(0x1234)

    def test_load_value_differs_by_address(self):
        assert load_value_for_address(0) != load_value_for_address(8)

    def test_load_value_fits_64_bits(self):
        for addr in (0, 1, 2**40, 2**60):
            assert 0 <= load_value_for_address(addr) <= MASK64

    def test_compute_result_deterministic(self):
        for op in (OpClass.IALU, OpClass.IMUL, OpClass.FALU, OpClass.FMUL):
            assert compute_result(op, 3, 5) == compute_result(op, 3, 5)

    def test_compute_result_sensitive_to_operands(self):
        for op in (OpClass.IALU, OpClass.IMUL, OpClass.FALU, OpClass.FMUL):
            assert compute_result(op, 3, 5) != compute_result(op, 4, 5)

    def test_compute_result_masks_to_64_bits(self):
        big = MASK64
        for op in (OpClass.IALU, OpClass.IMUL, OpClass.FMUL):
            assert 0 <= compute_result(op, big, big) <= MASK64

    def test_branch_result_is_zero(self):
        assert compute_result(OpClass.BRANCH, 1, 2) == 0

    def test_load_rejects_compute(self):
        with pytest.raises(ValueError):
            compute_result(OpClass.LOAD, 1, 2)


class TestInstruction:
    def test_flags(self):
        load = Instruction(0, OpClass.LOAD, dst=3, address=64)
        assert load.is_load and not load.is_store and not load.is_branch
        assert load.writes_register

        store = Instruction(1, OpClass.STORE, src1=3, address=64)
        assert store.is_store and not store.writes_register

        branch = Instruction(2, OpClass.BRANCH, taken=True, target=128)
        assert branch.is_branch and branch.taken

    def test_repr_mentions_op(self):
        assert "load" in repr(Instruction(0, OpClass.LOAD, dst=1))


class TestFunctionalUnitPool:
    def make_pool(self):
        return FunctionalUnitPool(int_alus=4, int_mults=2, fp_alus=1, fp_mults=1)

    def test_capacity_enforced(self):
        pool = self.make_pool()
        assert sum(pool.try_issue(OpClass.FMUL) for _ in range(3)) == 1

    def test_memory_ops_share_ialu_pool(self):
        pool = self.make_pool()
        issued = 0
        for op in (OpClass.IALU, OpClass.LOAD, OpClass.STORE, OpClass.BRANCH, OpClass.IALU):
            issued += pool.try_issue(op)
        assert issued == 4  # the shared pool has four slots
        assert pool.available(OpClass.LOAD) == 0

    def test_new_cycle_resets(self):
        pool = self.make_pool()
        for _ in range(4):
            pool.try_issue(OpClass.IALU)
        pool.new_cycle()
        assert pool.try_issue(OpClass.IALU)

    def test_imul_pool_independent(self):
        pool = self.make_pool()
        for _ in range(4):
            assert pool.try_issue(OpClass.IALU)
        assert pool.try_issue(OpClass.IMUL)
        assert pool.try_issue(OpClass.IMUL)
        assert not pool.try_issue(OpClass.IMUL)
