"""Figure 9: multi-bit upset probability vs critical charge."""

from conftest import print_table

from repro.experiments.technology import fig9_mbu_curve


def test_fig9_mbu(benchmark):
    rows = benchmark.pedantic(fig9_mbu_curve, rounds=1, iterations=1)
    print_table(
        "Figure 9: MBU probability vs critical charge",
        ["node (nm)", "Qcrit (fC)", "P(MBU | upset)"],
        [
            [r["feature_nm"], r["critical_charge_fc"], r["mbu_probability"]]
            for r in rows
        ],
    )
    probs = [r["mbu_probability"] for r in rows]
    charges = [r["critical_charge_fc"] for r in rows]
    # Lower critical charge -> higher MBU probability (newer nodes worse).
    assert charges == sorted(charges, reverse=True)
    assert probs == sorted(probs)
    # A 90 nm checker sees ~2x fewer MBUs than a 65 nm one.
    by_node = {r["feature_nm"]: r["mbu_probability"] for r in rows}
    assert by_node[90] < 0.65 * by_node[65]
