"""Figure 4: peak temperature vs checker power for 2d-2a and 3d-2a."""

from conftest import print_table

from repro.experiments.thermal import fig4_thermal_sweep, thermal_variants


def test_fig4_thermal_sweep(benchmark):
    rows = benchmark.pedantic(fig4_thermal_sweep, rounds=1, iterations=1)
    print_table(
        "Figure 4: thermal overhead of the 3D checker",
        ["checker (W)", "2d-2a (C)", "3d-2a (C)", "2d-a (C)",
         "3d vs 2d-a", "3d vs 2d-2a"],
        [
            [r.checker_power_w, round(r.temp_2d_2a_c, 1), round(r.temp_3d_2a_c, 1),
             round(r.temp_2d_a_c, 1), f"{r.delta_3d_vs_2da:+.1f}",
             f"{r.delta_3d_vs_2d2a:+.1f}"]
            for r in rows
        ],
    )
    by_power = {r.checker_power_w: r for r in rows}
    print("paper: 7W -> +4 C vs 2d-a (+4.5 vs 2d-2a); 15W -> +7 C vs 2d-a")

    # Headline checks (generous tolerances: this is a different thermal
    # substrate than the authors' HotSpot install).
    assert abs(by_power[7].delta_3d_vs_2da - 4.0) < 2.0
    assert abs(by_power[15].delta_3d_vs_2da - 7.0) < 2.5
    # The 2d-2a chip is *cooler* than 2d-a at low checker power (lateral
    # spreading + bigger heat sink).
    assert by_power[7].temp_2d_2a_c < by_power[7].temp_2d_a_c
    # Monotone in checker power.
    deltas = [r.delta_3d_vs_2da for r in rows]
    assert deltas == sorted(deltas)


def test_fig4_variants(benchmark):
    def run():
        return {
            "7W": thermal_variants(7.0),
            "15W": thermal_variants(15.0),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 3.2 design-space probes (delta vs standard 3d-2a, C)",
        ["variant", "7W checker", "15W checker", "paper"],
        [
            ["inactive upper die", f"{result['7W']['inactive_top']:+.1f}",
             f"{result['15W']['inactive_top']:+.1f}", "-2 / -1"],
            ["checker at corner", f"{result['7W']['corner']:+.1f}",
             f"{result['15W']['corner']:+.1f}", "about -1.5"],
            ["double power density", f"{result['7W']['double_density']:+.1f}",
             f"{result['15W']['double_density']:+.1f}", "+12 vs std @15W"],
        ],
    )
    # Removing the upper-die cache cools the chip; less so at higher
    # checker power (same ordering as the paper's -2 vs -1).
    assert result["7W"]["inactive_top"] < 0
    assert result["15W"]["inactive_top"] < 0
    # Doubling the 15 W checker's density heats the chip substantially.
    assert result["15W"]["double_density"] > 5.0
