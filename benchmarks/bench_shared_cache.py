"""Shared-cache pressure (the Hsu et al. multicore argument, Section 3.3)."""

from conftest import print_table

from repro.common.config import ChipModel
from repro.experiments.shared_cache import shared_cache_pressure


def test_shared_cache_pressure(benchmark):
    results = benchmark.pedantic(
        shared_cache_pressure, kwargs={"instructions_per_thread": 20_000},
        rounds=1, iterations=1,
    )
    small = results[ChipModel.TWO_D_A.value]
    big = results[ChipModel.TWO_D_2A.value]
    print_table(
        "L2 miss rate under multiprogrammed pressure",
        ["threads", "6 MB (2d-a)", "15 MB (2d-2a)"],
        [
            [s.num_threads, f"{s.miss_rate:.2%}", f"{b.miss_rate:.2%}"]
            for s, b in zip(small, big)
        ],
    )
    print("paper (citing Hsu et al. [13]): many extra megabytes yield "
          "significantly lower miss rates for heavily multi-threaded "
          "workloads — the case for the upper die's 9 MB.")
    # Single thread: capacities equivalent (the SPEC2k observation).
    assert abs(small[0].miss_rate - big[0].miss_rate) < 0.01
    # Four threads: the 15 MB cache wins decisively.
    assert small[-1].miss_rate > 5 * max(big[-1].miss_rate, 1e-4)
