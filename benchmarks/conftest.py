"""Shared settings for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison (run with ``-s`` to see the tables, e.g.
``pytest benchmarks/ --benchmark-only -s``).  Simulation-backed benchmarks
use a reduced instruction window so the full harness completes in minutes;
EXPERIMENTS.md records full-window results.
"""

from repro.experiments.runner import SimulationWindow
from repro.workloads.profiles import get_profile

# Window used by the simulation-backed benchmarks.
BENCH_WINDOW = SimulationWindow(warmup=6000, measured=20_000)

# Representative subset for the most expensive sweeps.
BENCH_SUBSET = [
    get_profile(name) for name in ("gzip", "mcf", "mesa", "swim", "eon", "art")
]


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Uniform fixed-width table printer for benchmark output."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
