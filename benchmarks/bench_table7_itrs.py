"""Table 7: ITRS device characteristics."""

from conftest import print_table

from repro.experiments.technology import table7_devices

PAPER = {
    90: (1.2, 37, 8.79e-16, 0.05),
    65: (1.1, 25, 6.99e-16, 0.20),
    45: (1.0, 18, 8.28e-16, 0.28),
}


def test_table7_itrs(benchmark):
    rows = benchmark.pedantic(table7_devices, rounds=1, iterations=1)
    print_table(
        "Table 7: device characteristics",
        ["node (nm)", "V", "gate length (nm)", "C/um (F)", "Ioff/um (uA)"],
        [
            [r["feature_nm"], r["voltage_v"], r["gate_length_nm"],
             f"{r['capacitance_f_per_um']:.2e}", r["leakage_ua_per_um"]]
            for r in rows
        ],
    )
    for r in rows:
        v, l, c, i = PAPER[r["feature_nm"]]
        assert r["voltage_v"] == v
        assert r["gate_length_nm"] == l
        assert abs(r["capacitance_f_per_um"] - c) < 1e-18
        assert r["leakage_ua_per_um"] == i
