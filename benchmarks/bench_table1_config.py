"""Table 1: the simulated machine's parameters (config defaults)."""

from conftest import print_table

from repro.common.config import BranchPredictorConfig, LeadingCoreConfig


def build_table():
    core = LeadingCoreConfig()
    bpred = BranchPredictorConfig()
    return [
        ["Fetch/dispatch/commit width", f"{core.fetch_width}/{core.dispatch_width}/{core.commit_width}", "4/4/4"],
        ["Reorder buffer", core.rob_size, 80],
        ["Issue queue (int/fp)", f"{core.int_issue_queue_size}/{core.fp_issue_queue_size}", "20/15"],
        ["LSQ", core.lsq_size, 40],
        ["Int ALUs/mult", f"{core.int_alus}/{core.int_mults}", "4/2"],
        ["FP ALUs/mult", f"{core.fp_alus}/{core.fp_mults}", "1/1"],
        ["L1 I-cache", f"{core.l1_icache.size_bytes // 1024}KB {core.l1_icache.ways}-way", "32KB 2-way"],
        ["L1 D-cache", f"{core.l1_dcache.size_bytes // 1024}KB {core.l1_dcache.ways}-way {core.l1_dcache.hit_latency_cycles}-cyc", "32KB 2-way 2-cyc"],
        ["Bimodal/L2 predictor entries", f"{bpred.bimodal_entries}/{bpred.level2_entries}", "16384/16384"],
        ["History bits", bpred.history_bits, 12],
        ["BTB", f"{bpred.btb_sets} sets {bpred.btb_ways}-way", "16384 sets 2-way"],
        ["Mispredict penalty", bpred.mispredict_penalty_cycles, 12],
        ["Frequency", f"{core.frequency_hz / 1e9:.0f} GHz", "2 GHz"],
        ["Memory latency", core.memory_latency_cycles, 300],
    ]


def test_table1_config(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print_table("Table 1: simulation parameters", ["parameter", "ours", "paper"], rows)
    for _name, ours, paper in rows:
        assert str(ours).replace(" ", "") == str(paper).replace(" ", "") or ours == paper
