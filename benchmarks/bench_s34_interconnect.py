"""Section 3.4: interconnect evaluation (vias, wire length/area/power)."""

from conftest import print_table

from repro.experiments.interconnect import section34_wire_analysis, via_summary


def test_s34_vias(benchmark):
    summary = benchmark.pedantic(via_summary, rounds=1, iterations=1)
    print_table(
        "Section 3.4: die-to-die vias",
        ["metric", "ours", "paper"],
        [
            ["via count", summary.num_vias, 1409],
            ["per-via power (mW)", round(summary.per_via_power_mw, 4), 0.011],
            ["total via power (mW)", round(summary.total_power_mw, 2), 15.49],
            ["total via area (mm2)", round(summary.total_area_mm2, 3), 0.07],
        ],
    )
    assert summary.num_vias == 1409
    assert abs(summary.total_power_mw - 15.49) / 15.49 < 0.10
    assert abs(summary.total_area_mm2 - 0.07) < 0.002


def test_s34_wires(benchmark):
    budgets = benchmark.pedantic(section34_wire_analysis, rounds=1, iterations=1)
    paper = {
        "2d-a": (0, 0.0, 2.36, 5.1),
        "2d-2a": (7490, 1.57, 5.49, 15.5),
        "3d-2a": (4279, 0.898, 4.61, 12.1),
    }
    print_table(
        "Section 3.4: horizontal interconnect",
        ["model", "inter-core (mm)", "paper", "ic metal (mm2)", "paper",
         "L2 metal (mm2)", "paper", "wire power (W)", "paper"],
        [
            [name, round(b.intercore_length_mm), paper[name][0],
             round(b.intercore_metal_area_mm2, 2), paper[name][1],
             round(b.l2_metal_area_mm2, 2), paper[name][2],
             round(b.total_power_w, 1), paper[name][3]]
            for name, b in budgets.items()
        ],
    )
    ic_saving = 1.0 - (
        budgets["3d-2a"].intercore_metal_area_mm2
        / budgets["2d-2a"].intercore_metal_area_mm2
    )
    power_saving = budgets["2d-2a"].total_power_w - budgets["3d-2a"].total_power_w
    print(f"inter-core metal saving: {ic_saving:.0%} (paper: 42%)")
    print(f"3D wire power saving vs 2d-2a: {power_saving:.1f} W (paper: 3.4 W)")
    print(
        "checker feed power in 3D: "
        f"{budgets['3d-2a'].intercore_power_w:.1f} W (paper: 1.8 W)"
    )

    assert budgets["2d-a"].intercore_length_mm == 0.0
    # 3D cuts inter-core wiring substantially (paper: 42% metal saving).
    assert 0.2 < ic_saving < 0.6
    # Wire power ordering and magnitudes track the paper.
    assert (
        budgets["2d-a"].total_power_w
        < budgets["3d-2a"].total_power_w
        < budgets["2d-2a"].total_power_w
    )
    assert abs(budgets["2d-a"].total_power_w - 5.1) < 1.0
    assert abs(budgets["3d-2a"].total_power_w - 12.1) < 2.0
    assert budgets["3d-2a"].intercore_power_w < 3.5
