"""Section 3.3: performance under a constant thermal constraint."""

from conftest import BENCH_SUBSET, BENCH_WINDOW, print_table

from repro.experiments.thermal_constraint import constant_thermal_performance


def test_s33_thermal_constraint(benchmark):
    def run():
        return [
            constant_thermal_performance(
                checker_power_w=p, window=BENCH_WINDOW, benchmarks=BENCH_SUBSET
            )
            for p in (7.0, 15.0)
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = {7.0: (1.9, 0.041), 15.0: (1.8, 0.082)}
    print_table(
        "Section 3.3: constant thermal constraint",
        ["checker (W)", "f (GHz)", "paper f", "perf loss", "paper loss"],
        [
            [r.checker_power_w, round(r.frequency_ghz, 2), paper[r.checker_power_w][0],
             f"{r.performance_loss:.1%}", f"{paper[r.checker_power_w][1]:.1%}"]
            for r in results
        ],
    )
    seven, fifteen = results
    # Paper: 1.9 GHz / 4.1% at 7 W, 1.8 GHz / 8.2% at 15 W.
    assert 1.8 <= seven.frequency_ghz <= 1.98
    assert fifteen.frequency_ghz <= seven.frequency_ghz
    assert 0.0 < seven.performance_loss < 0.12
    assert fifteen.performance_loss >= seven.performance_loss
    # Loss is smaller than the frequency cut (memory latency unchanged).
    assert seven.performance_loss < (1.0 - seven.frequency_fraction) + 0.02
