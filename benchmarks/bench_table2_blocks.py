"""Table 2: area and power of the major blocks."""

from conftest import print_table

from repro.floorplan.blocks import (
    CHECKER_CORE_AREA_MM2,
    L2_BANK_AREA_MM2,
    L2_BANK_DYNAMIC_W_PER_ACCESS,
    L2_BANK_STATIC_W,
    LEADING_CORE_AREA_MM2,
    LEADING_CORE_POWER_W,
    ROUTER_AREA_MM2,
    ROUTER_POWER_W,
)
from repro.cache.cacti import CactiModel


def build_table():
    bank = CactiModel().estimate_bank()
    return [
        ["Leading core area (mm2)", LEADING_CORE_AREA_MM2, 19.6],
        ["Leading core avg power (W)", LEADING_CORE_POWER_W, 35.0],
        ["In-order core area (mm2)", CHECKER_CORE_AREA_MM2, 5.0],
        ["1MB L2 bank area (mm2)", round(bank.area_mm2, 2), 5.0],
        ["1MB bank dynamic W/access", round(bank.dynamic_power_w_per_access, 3), 0.732],
        ["1MB bank static W", round(bank.static_power_w, 3), 0.376],
        ["Router area (mm2)", ROUTER_AREA_MM2, 0.22],
        ["Router power (W)", ROUTER_POWER_W, 0.296],
    ]


def test_table2_blocks(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print_table("Table 2: block area and power", ["block", "ours", "paper"], rows)
    for _name, ours, paper in rows:
        assert abs(float(ours) - float(paper)) / float(paper) < 0.01
    assert L2_BANK_AREA_MM2 == 5.0
    assert L2_BANK_DYNAMIC_W_PER_ACCESS == 0.732
    assert L2_BANK_STATIC_W == 0.376
