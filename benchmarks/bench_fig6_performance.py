"""Figure 6: per-benchmark IPC across the four chip models."""

from conftest import BENCH_WINDOW, print_table

from repro.common.config import ChipModel
from repro.experiments.perf import average_ipc, fig6_performance, l2_statistics


def test_fig6_performance(benchmark):
    rows = benchmark.pedantic(
        fig6_performance, kwargs={"window": BENCH_WINDOW}, rounds=1, iterations=1
    )
    print_table(
        "Figure 6: IPC per benchmark (distributed-sets NUCA)",
        ["benchmark", "2d-a", "2d-2a", "3d-2a", "3d-checker"],
        [
            [r.benchmark,
             round(r[ChipModel.TWO_D_A], 2),
             round(r[ChipModel.TWO_D_2A], 2),
             round(r[ChipModel.THREE_D_2A], 2),
             round(r[ChipModel.THREE_D_CHECKER], 2)]
            for r in rows
        ],
    )
    means = average_ipc(rows)
    print("suite means:", {k: round(v, 3) for k, v in means.items()})
    improvement = means["3d-2a"] / means["2d-2a"] - 1.0
    checker_gap = abs(means["3d-checker"] / means["2d-a"] - 1.0)
    print(
        f"3d-2a vs 2d-2a: {improvement:+.1%} (paper: +5.5%); "
        f"3d-checker vs 2d-a: {checker_gap:.1%} (paper: ~0%)"
    )
    assert len(rows) == 19
    # Paper's orderings: the 2d-2a chip is slowest (22-cycle L2 hits); the
    # 3D chip recovers most of the gap; the checker-only die matches 2d-a.
    assert means["2d-2a"] < means["2d-a"]
    assert means["3d-2a"] > means["2d-2a"]
    assert 0.0 < improvement < 0.15
    assert checker_gap < 0.05
    # Per-benchmark shape: mcf/art at the bottom, mesa/eon at the top.
    by_name = {r.benchmark: r[ChipModel.TWO_D_A] for r in rows}
    assert by_name["mcf"] == min(by_name.values())
    assert by_name["mesa"] > 1.8 and by_name["eon"] > 1.8


def test_s33_l2_statistics(benchmark):
    stats = benchmark.pedantic(
        l2_statistics, kwargs={"window": BENCH_WINDOW}, rounds=1, iterations=1
    )
    print_table(
        "Section 3.3 cache statistics",
        ["metric", "ours", "paper"],
        [
            ["L2 misses/10k (6 MB)", round(stats["misses_per_10k_6mb"], 2), 1.43],
            ["L2 misses/10k (15 MB)", round(stats["misses_per_10k_15mb"], 2), 1.25],
            ["avg L2 hit latency (2d-a)", round(stats["avg_hit_latency_6mb"], 1), 18],
            ["avg L2 hit latency (2d-2a)", round(stats["avg_hit_latency_15mb"], 1), 22],
        ],
    )
    assert stats["misses_per_10k_15mb"] < stats["misses_per_10k_6mb"]
    assert abs(stats["avg_hit_latency_6mb"] - 18.0) < 1.5
    assert abs(stats["avg_hit_latency_15mb"] - 22.0) < 1.5
    assert 0.5 < stats["misses_per_10k_6mb"] < 4.0
