"""Figure 1's summary box: the power-efficient RMT results of [19].

The paper's baseline reliable processor inherits four quantitative claims
from Madan & Balasubramonian's RMT work; the co-simulation and
interconnect models reproduce them.
"""

from conftest import BENCH_SUBSET, BENCH_WINDOW, print_table

from repro.common.config import ChipModel
from repro.experiments.interconnect import section34_wire_analysis
from repro.experiments.runner import simulate_leading, simulate_rmt
from repro.power.wattch import CorePowerModel, rmt_power_overhead


def test_fig1_summary(benchmark):
    def run():
        freqs, loss = [], []
        for profile in BENCH_SUBSET:
            rmt = simulate_rmt(profile, ChipModel.THREE_D_2A, window=BENCH_WINDOW)
            solo = simulate_leading(profile, ChipModel.THREE_D_2A, window=BENCH_WINDOW)
            freqs.append(rmt.mean_frequency_fraction)
            loss.append(1.0 - rmt.leading.ipc / solo.ipc)
        mean_freq = sum(freqs) / len(freqs)
        mean_loss = sum(loss) / len(loss)
        intercore_power = section34_wire_analysis()["3d-2a"].intercore_power_w
        checker_power = CorePowerModel().checker_power(7.0, mean_freq)
        chip_power = 35.0 + 6 * 0.426 + 5.4 + 1.78
        overhead = rmt_power_overhead(chip_power, checker_power, intercore_power)
        return mean_freq, mean_loss, intercore_power, overhead

    mean_freq, mean_loss, intercore_power, overhead = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Figure 1 summary box ([19]'s results on our substrate)",
        ["claim", "paper", "measured"],
        [
            ["trailing core frequency", "~45% of leading", f"{mean_freq:.0%}"],
            ["leading-core performance loss", "none", f"{mean_loss:.1%}"],
            ["inter-core interconnect power", "< 2 W", f"{intercore_power:.1f} W"],
            ["RMT power overhead", "< 10%", f"{overhead:.1%}"],
        ],
    )
    assert 0.35 <= mean_freq <= 0.70
    assert mean_loss < 0.05
    assert intercore_power < 3.0
    assert overhead < 0.20
