"""Table 6: ITRS variability projections."""

from conftest import print_table

from repro.experiments.technology import table6_variability

PAPER = {
    80: (0.26, 0.41, 0.55),
    65: (0.33, 0.45, 0.56),
    45: (0.42, 0.50, 0.58),
    32: (0.58, 0.57, 0.59),
}


def test_table6_variability(benchmark):
    rows = benchmark.pedantic(table6_variability, rounds=1, iterations=1)
    print_table(
        "Table 6: variability vs technology node",
        ["node (nm)", "Vth", "circuit perf", "circuit power"],
        [
            [r["feature_nm"],
             f"{r['vth_variability']:.0%}",
             f"{r['circuit_performance_variability']:.0%}",
             f"{r['circuit_power_variability']:.0%}"]
            for r in rows
        ],
    )
    for r in rows:
        vth, perf, power = PAPER[r["feature_nm"]]
        assert r["vth_variability"] == vth
        assert r["circuit_performance_variability"] == perf
        assert r["circuit_power_variability"] == power
