"""Overhead budget of the observability layer.

Runs the same serial Figure 6 slice in two fresh interpreters — one with
observability on (the default) and one with ``REPRO_OBS=off`` — and
asserts the instrumented run stays within the 5% overhead budget the
telemetry design targets (aggregate-point publication, no per-instruction
instrumentation).  Fresh processes ensure the env switch is exercised the
way workers see it: read once at import, every instrument resolved to a
shared no-op.

Each mode takes the minimum of three child runs to suppress scheduler
noise; a small absolute slack absorbs residual timer jitter on loaded
hosts.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest
from conftest import print_table

import repro

_CHILD = """
import time
from repro.experiments.perf import fig6_performance
from repro.experiments.runner import SimulationWindow
from repro.workloads.profiles import get_profile

window = SimulationWindow(warmup=2000, measured=8000)
benchmarks = [get_profile(n) for n in ("gzip", "mcf")]
start = time.perf_counter()
fig6_performance(window=window, benchmarks=benchmarks, jobs=1)
print(time.perf_counter() - start)
"""

_ROUNDS = 3


def _child_seconds(obs: str) -> float:
    env = dict(os.environ)
    env["REPRO_OBS"] = obs
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    best = float("inf")
    for _ in range(_ROUNDS):
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD],
            env=env, capture_output=True, text=True, check=True, timeout=600,
        )
        best = min(best, float(proc.stdout.strip().splitlines()[-1]))
    return best


@pytest.mark.slow
def test_obs_overhead_within_budget():
    start = time.perf_counter()
    off_s = _child_seconds("off")
    on_s = _child_seconds("on")
    total = time.perf_counter() - start

    overhead = on_s / off_s - 1.0
    print_table(
        "Observability overhead (serial fig6 slice, min of "
        f"{_ROUNDS} fresh processes)",
        ["mode", "wall (s)"],
        [
            ["REPRO_OBS=off", f"{off_s:.2f}"],
            ["instrumented", f"{on_s:.2f}"],
            ["overhead", f"{overhead:+.1%}"],
        ],
    )
    print(f"(benchmark wall time {total:.1f}s)")

    # The budget: instrumentation costs < 5% on the hot serial path.  A
    # small absolute slack absorbs cross-process timer noise on short runs.
    assert on_s <= off_s * 1.05 + 0.5, (
        f"instrumented run {on_s:.2f}s vs {off_s:.2f}s baseline "
        f"({overhead:+.1%}) exceeds the 5% observability budget"
    )
