"""Overhead budget of the observability layer.

Runs the same serial Figure 6 slice in fresh interpreters across four
modes — observability off (``REPRO_OBS=off``), instrumented (the
default), instrumented *with the full streaming path active* (a live
listener plus a Prometheus metrics endpoint being scraped), and the
streaming consumers registered while ``REPRO_OBS=off`` (the kill switch
must keep the piggybacking near-zero even with consumers attached) —
and asserts every mode stays within the 5% overhead budget the
telemetry design targets (aggregate-point publication, no
per-instruction instrumentation).  Fresh processes ensure the env
switch is exercised the way workers see it: read once at import, every
instrument resolved to a shared no-op.

Each mode takes the minimum of three child runs to suppress scheduler
noise; a small absolute slack absorbs residual timer jitter on loaded
hosts.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest
from conftest import print_table

import repro

_CHILD = """
import sys
import time
from repro.experiments.perf import fig6_performance
from repro.experiments.runner import SimulationWindow
from repro.workloads.profiles import get_profile

live = "--live" in sys.argv
if live:
    import threading
    import urllib.request
    from repro.obs import live as live_mod

    live_mod.add_listener(lambda kind, stats: None)
    server = live_mod.start_metrics_server(0)
    stop = threading.Event()

    def scrape():
        while not stop.is_set():
            try:
                urllib.request.urlopen(server.url, timeout=1).read()
            except OSError:
                pass
            stop.wait(0.1)

    scraper = threading.Thread(target=scrape, daemon=True)
    scraper.start()

window = SimulationWindow(warmup=2000, measured=8000)
benchmarks = [get_profile(n) for n in ("gzip", "mcf")]
start = time.perf_counter()
fig6_performance(window=window, benchmarks=benchmarks, jobs=1)
elapsed = time.perf_counter() - start
if live:
    stop.set()
    scraper.join(timeout=2)
    live_mod.stop_metrics_server()
print(elapsed)
"""

_ROUNDS = 3


def _child_seconds(obs: str, live: bool = False) -> float:
    env = dict(os.environ)
    env["REPRO_OBS"] = obs
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    argv = [sys.executable, "-c", _CHILD]
    if live:
        argv.append("--live")
    best = float("inf")
    for _ in range(_ROUNDS):
        proc = subprocess.run(
            argv,
            env=env, capture_output=True, text=True, check=True, timeout=600,
        )
        best = min(best, float(proc.stdout.strip().splitlines()[-1]))
    return best


@pytest.mark.slow
def test_obs_overhead_within_budget():
    start = time.perf_counter()
    off_s = _child_seconds("off")
    on_s = _child_seconds("on")
    live_s = _child_seconds("on", live=True)
    off_live_s = _child_seconds("off", live=True)
    total = time.perf_counter() - start

    def pct(s: float) -> str:
        return f"{s / off_s - 1.0:+.1%}"

    print_table(
        "Observability overhead (serial fig6 slice, min of "
        f"{_ROUNDS} fresh processes)",
        ["mode", "wall (s)", "vs off"],
        [
            ["REPRO_OBS=off", f"{off_s:.2f}", "—"],
            ["instrumented", f"{on_s:.2f}", pct(on_s)],
            ["instrumented + live/scrape", f"{live_s:.2f}", pct(live_s)],
            ["off + live consumers", f"{off_live_s:.2f}", pct(off_live_s)],
        ],
    )
    print(f"(benchmark wall time {total:.1f}s)")

    # The budget: instrumentation costs < 5% on the hot serial path, and
    # the streaming consumers (listener folds, a scraper hitting the
    # endpoint) must fit inside the same envelope.  With REPRO_OBS=off
    # the kill switch disables the piggybacking entirely, so attached
    # consumers must cost nothing.  A small absolute slack absorbs
    # cross-process timer noise on short runs.
    budget = off_s * 1.05 + 0.5
    for label, seconds in (
        ("instrumented", on_s),
        ("instrumented + live/scrape", live_s),
        ("off + live consumers", off_live_s),
    ):
        assert seconds <= budget, (
            f"{label} run {seconds:.2f}s vs {off_s:.2f}s baseline "
            f"({pct(seconds)}) exceeds the 5% observability budget"
        )
