"""Performance under error pressure: the cost of recovery (extension).

Connects the reliability analysis (Sections 3.5/4) to throughput: a
checker pinned at peak frequency recovers constantly; the DFS-throttled
checker's margins make recovery essentially free.
"""

from conftest import print_table

from repro.experiments.error_performance import (
    checker_operating_point_comparison,
    error_performance,
)


def test_error_performance_curve(benchmark):
    def run():
        return [
            error_performance(rate)
            for rate in (0.0, 1e-9, 1e-7, 1e-5, 1e-3)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Throughput vs detected-error rate (slack 200, IPC 1.5)",
        ["errors/instr", "recoveries/M-instr", "throughput", "slowdown"],
        [
            [f"{r.error_rate_per_instruction:.0e}",
             f"{r.recoveries_per_million:.2f}",
             f"{r.throughput_fraction:.4f}", f"{r.slowdown:.2%}"]
            for r in rows
        ],
    )
    losses = [r.slowdown for r in rows]
    assert losses == sorted(losses)
    assert losses[0] == 0.0


def test_operating_point_comparison(benchmark):
    points = benchmark.pedantic(
        checker_operating_point_comparison, rounds=1, iterations=1
    )
    print_table(
        "Checker operating points",
        ["operating point", "errors/instr", "slowdown"],
        [
            [name, f"{p.error_rate_per_instruction:.2e}", f"{p.slowdown:.3%}"]
            for name, p in points.items()
        ],
    )
    assert points["dfs-throttled"].slowdown < points["full-speed"].slowdown
    assert points["dfs-throttled"].slowdown < 1e-6
