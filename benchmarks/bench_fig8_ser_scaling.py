"""Figure 8: SRAM soft-error rate scaling across technology nodes."""

from conftest import print_table

from repro.experiments.technology import fig8_ser_scaling


def test_fig8_ser_scaling(benchmark):
    rows = benchmark.pedantic(fig8_ser_scaling, rounds=1, iterations=1)
    print_table(
        "Figure 8: SRAM SER vs node (relative to 180 nm)",
        ["node (nm)", "per-bit SER", "whole-chip SER"],
        [[r["feature_nm"], r["per_bit_relative"], r["chip_relative"]] for r in rows],
    )
    per_bit = [r["per_bit_relative"] for r in rows]
    chip = [r["chip_relative"] for r in rows]
    # The paper's two curves: per-bit declines with scaling, total rises.
    assert per_bit == sorted(per_bit, reverse=True)
    assert chip == sorted(chip)
    assert chip[0] == 1.0
