"""Opt-in performance regression guard against ``BENCH_trace.json``.

Runs the quick fig6 end-to-end measurement (same subset and window as
``bench_trace_kernels``, best of three to damp scheduler noise) and fails
if it regresses more than 20% against the committed baseline.  Opt-in —
wall-clock checks are inherently machine-dependent, so this is not part
of the default suite:

    pytest benchmarks/check_bench.py -m bench_guard

Regenerate the baseline with ``pytest benchmarks/bench_trace_kernels.py
--benchmark-only -s`` after intentional performance changes.
"""

import json
import time
from pathlib import Path

import pytest
from conftest import BENCH_WINDOW

from repro.common import memo
from repro.experiments.perf import fig6_performance
from repro.workloads.profiles import get_profile

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace.json"
_ALLOWED_REGRESSION = 1.20
_ROUNDS = 3


def _best_fig6_time(subset, chunksize=None, simbatch=False) -> float:
    best = float("inf")
    for _ in range(_ROUNDS):
        memo.clear_cache()
        start = time.perf_counter()
        fig6_performance(
            window=BENCH_WINDOW, benchmarks=subset, jobs=1,
            chunksize=chunksize, simbatch=simbatch,
        )
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.bench_guard
def test_fig6_end_to_end_has_not_regressed():
    baseline = json.loads(_RESULT_PATH.read_text())
    committed = baseline["fig6_end_to_end"]
    subset = [get_profile(name) for name in committed["benchmarks"]]
    assert (BENCH_WINDOW.warmup, BENCH_WINDOW.measured) == (
        committed["warmup"], committed["measured"]
    ), "bench window changed; regenerate BENCH_trace.json first"

    measured = _best_fig6_time(subset)
    budget = committed["columnar_s"] * _ALLOWED_REGRESSION
    assert measured <= budget, (
        f"fig6 end-to-end regressed: best of {_ROUNDS} runs took "
        f"{measured:.3f}s against a committed {committed['columnar_s']}s "
        f"(+20% budget {budget:.3f}s)"
    )


@pytest.mark.bench_guard
def test_fig6_batched_has_not_regressed():
    baseline = json.loads(_RESULT_PATH.read_text())
    committed = baseline.get("fig6_batched")
    if committed is None:
        pytest.skip("no fig6_batched baseline committed yet")
    subset = [get_profile(name) for name in committed["benchmarks"]]
    measured = _best_fig6_time(subset, chunksize=committed["chunksize"])
    budget = committed["batched_s"] * _ALLOWED_REGRESSION
    assert measured <= budget, (
        f"batched fig6 regressed: best of {_ROUNDS} runs took "
        f"{measured:.3f}s against a committed {committed['batched_s']}s "
        f"(+20% budget {budget:.3f}s)"
    )


@pytest.mark.bench_guard
def test_fig6_simbatch_has_not_regressed():
    baseline = json.loads(_RESULT_PATH.read_text())
    committed = baseline.get("fig6_simbatch")
    if committed is None:
        pytest.skip("no fig6_simbatch baseline committed yet")
    subset = [get_profile(name) for name in committed["benchmarks"]]
    measured = _best_fig6_time(subset, simbatch=True)
    budget = committed["simbatch_s"] * _ALLOWED_REGRESSION
    assert measured <= budget, (
        f"simbatch fig6 regressed: best of {_ROUNDS} runs took "
        f"{measured:.3f}s against a committed {committed['simbatch_s']}s "
        f"(+20% budget {budget:.3f}s)"
    )
