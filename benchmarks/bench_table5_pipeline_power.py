"""Table 5: power overhead of deep pipelining (Section 3.5)."""

from conftest import print_table

from repro.experiments.pipeline_depth import slack_comparison, table5_pipeline_power


def test_table5_pipeline_power(benchmark):
    rows = benchmark.pedantic(table5_pipeline_power, rounds=1, iterations=1)
    print_table(
        "Table 5: pipeline depth vs relative power",
        ["FO4/stage", "dyn (paper)", "dyn (model)", "leak (paper)", "leak (model)",
         "total (paper)", "total (model)"],
        [
            [r.fo4_per_stage, r.published_dynamic, r.model_dynamic,
             r.published_leakage, r.model_leakage,
             round(r.published_total, 2), round(r.model_total, 2)]
            for r in rows
        ],
    )
    # Headline conclusion: pipelining to 6 FO4 costs ~3-4x the power.
    assert rows[-1].published_total > 3.0
    assert rows[-1].model_total > 3.0
    # Model must be monotone and match the published endpoints reasonably.
    totals = [r.model_total for r in rows]
    assert totals == sorted(totals)
    assert abs(rows[0].model_total - rows[0].published_total) < 0.05
    assert abs(rows[-1].model_total - rows[-1].published_total) / rows[-1].published_total < 0.5


def test_s35_slack_alternative(benchmark):
    """Section 3.5's alternative: DFS throttling yields slack for free."""
    result = benchmark.pedantic(slack_comparison, rounds=1, iterations=1)
    print_table(
        "Section 3.5: slack via deep pipelining vs DFS",
        ["metric", "value"],
        [[k, round(v, 6)] for k, v in result.items()],
    )
    assert result["deep_pipeline_power"] > 3.0      # paper: ~3-4x power
    assert result["dfs_power"] < 1.0                # DFS *saves* power
    assert result["dfs_slack"] > 0.4                # ~half-cycle margins
    assert result["dfs_error_rate"] < 1e-9
