"""Section 3.3: distributed-sets vs distributed-ways NUCA policies."""

from conftest import BENCH_SUBSET, BENCH_WINDOW, print_table

from repro.experiments.perf import nuca_policy_comparison


def test_s33_nuca_policy(benchmark):
    means = benchmark.pedantic(
        nuca_policy_comparison,
        kwargs={"window": BENCH_WINDOW, "benchmarks": BENCH_SUBSET},
        rounds=1, iterations=1,
    )
    sets_ipc = means["distributed-sets"]
    ways_ipc = means["distributed-ways"]
    advantage = ways_ipc / sets_ipc - 1.0
    print_table(
        "Section 3.3: NUCA policy comparison (mean IPC)",
        ["policy", "mean IPC"],
        [["distributed sets", round(sets_ipc, 3)],
         ["distributed ways", round(ways_ipc, 3)]],
    )
    print(f"distributed-ways advantage: {advantage:+.2%} (paper: < +2%)")
    # The paper: the way policy is slightly better, by less than 2%.
    assert -0.01 < advantage < 0.04
