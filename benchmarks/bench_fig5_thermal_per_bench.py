"""Figure 5: per-benchmark peak temperature for the five configurations."""

from conftest import BENCH_WINDOW, print_table

from repro.experiments.thermal import fig5_per_benchmark


def test_fig5_thermal_per_benchmark(benchmark):
    rows = benchmark.pedantic(
        fig5_per_benchmark, kwargs={"window": BENCH_WINDOW}, rounds=1, iterations=1
    )
    print_table(
        "Figure 5: per-benchmark peak temperature (C)",
        ["benchmark", "2d_a", "2d_2a_7W", "3d_2a_7W", "2d_2a_15W", "3d_2a_15W"],
        [
            [r.benchmark, round(r.temp_2d_a, 1), round(r.temp_2d_2a_7w, 1),
             round(r.temp_3d_2a_7w, 1), round(r.temp_2d_2a_15w, 1),
             round(r.temp_3d_2a_15w, 1)]
            for r in rows
        ],
    )
    assert len(rows) == 19
    for r in rows:
        # 3D always hotter than the matching 2D chip; 15 W hotter than 7 W.
        assert r.temp_3d_2a_7w > r.temp_2d_2a_7w
        assert r.temp_3d_2a_15w >= r.temp_3d_2a_7w - 0.2
        assert 55.0 < r.temp_2d_a < 100.0
    # Busy benchmarks run hotter than memory-bound ones on the baseline.
    by_name = {r.benchmark: r for r in rows}
    assert by_name["mesa"].temp_2d_a > by_name["mcf"].temp_2d_a
