"""Workload calibration audit: synthetic profiles vs their SPEC2k targets."""

from conftest import BENCH_WINDOW, print_table

from repro.experiments.calibration import calibration_audit, suite_summary


def test_workload_calibration(benchmark):
    rows = benchmark.pedantic(
        calibration_audit, kwargs={"window": BENCH_WINDOW}, rounds=1, iterations=1
    )
    print_table(
        "Workload calibration (2d-a baseline)",
        ["benchmark", "target IPC", "simulated", "error", "bpred miss",
         "L1D miss", "L2 m/10k"],
        [
            [r.benchmark, r.target_ipc, round(r.simulated_ipc, 2),
             f"{r.ipc_error:+.0%}", f"{r.branch_mispredict_rate:.1%}",
             f"{r.l1d_miss_rate:.1%}", round(r.l2_misses_per_10k, 2)]
            for r in rows
        ],
    )
    summary = suite_summary(rows)
    print("suite:", {k: round(v, 3) for k, v in summary.items()})

    # Per-benchmark IPC within 40% of its calibration target...
    for r in rows:
        assert abs(r.ipc_error) < 0.40, r.benchmark
    # ...and the *ordering* of benchmarks (what the figures depend on)
    # strongly preserved.
    assert summary["rank_correlation"] > 0.85
    # Suite-level anchors near the paper's: ~1.4 misses/10k, single-digit
    # misprediction rates.
    assert 0.5 < summary["mean_l2_misses_per_10k"] < 3.0
    assert summary["mean_mispredict_rate"] < 0.12
