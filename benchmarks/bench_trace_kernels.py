"""Columnar trace pipeline speedups, recorded to ``BENCH_trace.json``.

Two measurements, both against the per-instruction reference paths that
the vectorized kernels replaced (and which remain in-tree as the
bit-identity oracles):

* **generation** — ``TraceGenerator.generate_arrays`` vs the
  ``_generate_chunk_reference`` loop, same instruction budget;
* **fig6 end-to-end** — ``fig6_performance`` on the columnar pipeline vs
  the legacy pipeline (object generation, per-address preload, object
  scheduling), restored via monkeypatching for the duration of the run.

Both comparisons also assert bit-identical results — the speedup only
counts because nothing changed.
"""

import dataclasses
import json
import time
from contextlib import contextmanager
from pathlib import Path

import pytest
from conftest import BENCH_WINDOW, print_table

from repro.common import memo
from repro.core.leading import LeadingCoreTiming
from repro.core.memory import MemoryHierarchy
from repro.core.rmt import RmtSimulator
from repro.experiments.perf import fig6_performance
from repro.isa.soa import TraceArrays
from repro.isa.trace import TraceGenerator
from repro.workloads.profiles import get_profile

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace.json"
_GEN_INSTRUCTIONS = 200_000
_FIG6_SUBSET = ("gzip", "mcf")


@contextmanager
def _legacy_pipeline():
    """Swap the vectorized hot paths for their per-instruction references
    (generation, cache preload, and scheduling), i.e. the pre-columnar
    pipeline, for the duration of the block."""
    saved = (
        TraceGenerator._generate_chunk,
        MemoryHierarchy.preload_profile,
        LeadingCoreTiming.run,
        RmtSimulator.run,
    )

    def reference_chunk(self, count):
        return TraceArrays.from_instructions(
            self._generate_chunk_reference(count)
        )

    def reference_preload(self, profile):
        self._preload_profile_reference(profile)
        self.l1i.stats.reset()
        self.l1d.stats.reset()
        self.l2.stats.reset()

    def object_leading_run(self, trace, warmup=0):
        if isinstance(trace, TraceArrays):
            trace = trace.to_instructions()
        return saved[2](self, trace, warmup)

    def object_rmt_run(self, trace, warmup=0):
        if isinstance(trace, TraceArrays):
            trace = trace.to_instructions()
        return saved[3](self, trace, warmup)

    TraceGenerator._generate_chunk = reference_chunk
    MemoryHierarchy.preload_profile = reference_preload
    LeadingCoreTiming.run = object_leading_run
    RmtSimulator.run = object_rmt_run
    try:
        yield
    finally:
        (
            TraceGenerator._generate_chunk,
            MemoryHierarchy.preload_profile,
            LeadingCoreTiming.run,
            RmtSimulator.run,
        ) = saved


@pytest.mark.slow
def test_trace_kernel_speedups(benchmark):
    profile = get_profile("gzip")

    # -- trace generation ----------------------------------------------
    # Full 8192-instruction chunks with a trim, exactly like
    # ``generate_arrays`` — prefix stability holds at chunk granularity.
    start = time.perf_counter()
    reference_trace = []
    reference_gen = TraceGenerator(profile, seed=42)
    while len(reference_trace) < _GEN_INSTRUCTIONS:
        reference_trace.extend(reference_gen._generate_chunk_reference(8192))
    reference_trace = reference_trace[:_GEN_INSTRUCTIONS]
    generation_reference_s = time.perf_counter() - start

    def columnar_generation():
        return TraceGenerator(profile, seed=42).generate_arrays(
            _GEN_INSTRUCTIONS
        )

    start = time.perf_counter()
    columnar_trace = benchmark.pedantic(
        columnar_generation, rounds=1, iterations=1
    )
    generation_columnar_s = time.perf_counter() - start
    assert columnar_trace == TraceArrays.from_instructions(reference_trace)
    generation_speedup = generation_reference_s / generation_columnar_s

    # -- fig6 end-to-end ------------------------------------------------
    # Each stage takes the best of a few fresh-cache rounds: wall-clock
    # comparisons on a shared machine are scheduler-noisy, and the best
    # round is the least contaminated estimate of the pipeline's cost.
    subset = [get_profile(name) for name in _FIG6_SUBSET]

    def _best_fig6(rounds, **kwargs):
        best_s, rows = float("inf"), None
        for _ in range(rounds):
            memo.clear_cache()
            start = time.perf_counter()
            candidate = fig6_performance(
                window=BENCH_WINDOW, benchmarks=subset, jobs=1, **kwargs
            )
            elapsed = time.perf_counter() - start
            if elapsed < best_s:
                best_s, rows = elapsed, candidate
        return best_s, rows

    with _legacy_pipeline():
        fig6_legacy_s, legacy_rows = _best_fig6(rounds=2)
    fig6_columnar_s, columnar_rows = _best_fig6(rounds=3)
    assert [dataclasses.asdict(r) for r in columnar_rows] == [
        dataclasses.asdict(r) for r in legacy_rows
    ]
    fig6_speedup = fig6_legacy_s / fig6_columnar_s

    # -- fig6 batched chunks --------------------------------------------
    # One oversized chunk groups both benchmarks, so the prepare hook
    # primes their traces in a single lockstep batch and the memoized
    # preload plans are shared across all chip models.
    batched_chunksize = 4 * len(subset)
    fig6_batched_s, batched_rows = _best_fig6(
        rounds=3, chunksize=batched_chunksize
    )
    assert [dataclasses.asdict(r) for r in batched_rows] == [
        dataclasses.asdict(r) for r in legacy_rows
    ]
    fig6_batched_speedup = fig6_legacy_s / fig6_batched_s

    print_table(
        "Columnar trace pipeline speedups",
        ["stage", "reference (s)", "columnar (s)", "speedup"],
        [
            ["generation", round(generation_reference_s, 3),
             round(generation_columnar_s, 3),
             f"{generation_speedup:.1f}x"],
            ["fig6 end-to-end", round(fig6_legacy_s, 3),
             round(fig6_columnar_s, 3), f"{fig6_speedup:.1f}x"],
            ["fig6 batched chunks", round(fig6_legacy_s, 3),
             round(fig6_batched_s, 3), f"{fig6_batched_speedup:.1f}x"],
        ],
    )

    _RESULT_PATH.write_text(json.dumps({
        "generation": {
            "instructions": _GEN_INSTRUCTIONS,
            "reference_s": round(generation_reference_s, 4),
            "columnar_s": round(generation_columnar_s, 4),
            "speedup": round(generation_speedup, 2),
        },
        "fig6_end_to_end": {
            "benchmarks": list(_FIG6_SUBSET),
            "warmup": BENCH_WINDOW.warmup,
            "measured": BENCH_WINDOW.measured,
            "legacy_s": round(fig6_legacy_s, 4),
            "columnar_s": round(fig6_columnar_s, 4),
            "speedup": round(fig6_speedup, 2),
        },
        "fig6_batched": {
            "benchmarks": list(_FIG6_SUBSET),
            "warmup": BENCH_WINDOW.warmup,
            "measured": BENCH_WINDOW.measured,
            "chunksize": batched_chunksize,
            "batched_s": round(fig6_batched_s, 4),
            "speedup_vs_legacy": round(fig6_batched_speedup, 2),
        },
    }, indent=2) + "\n")

    # Acceptance floors for the PR; the measured margins are far larger.
    assert generation_speedup >= 3.0
    assert fig6_speedup >= 1.5
    assert fig6_batched_speedup >= 1.5
