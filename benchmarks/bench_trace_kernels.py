"""Columnar trace pipeline speedups, recorded to ``BENCH_trace.json``.

Two measurements, both against the per-instruction reference paths that
the vectorized kernels replaced (and which remain in-tree as the
bit-identity oracles):

* **generation** — ``TraceGenerator.generate_arrays`` vs the
  ``_generate_chunk_reference`` loop, same instruction budget;
* **leading_kernel** — the windowed issue/retire kernel
  (``_scan_window``) vs the retained per-row ``_advance`` oracle, same
  trace and memoized schedule;
* **fig6 end-to-end** — ``fig6_performance`` on the columnar pipeline vs
  the legacy pipeline (object generation, per-address preload, object
  scheduling), restored via monkeypatching for the duration of the run;
* **fig6_simbatch** — the same sweep with each benchmark's chip models
  stepped as one lockstep ``SimBatch`` (shared per-window prepare
  statics), gated against the previous PR's committed batched time.

Both comparisons also assert bit-identical results — the speedup only
counts because nothing changed.
"""

import dataclasses
import json
import time
from contextlib import contextmanager
from pathlib import Path

import pytest
from conftest import BENCH_WINDOW, print_table

from repro.common import memo
from repro.common.config import ChipModel, SystemConfig
from repro.core.branch import BranchPredictor
from repro.core.leading import LeadingCoreTiming, build_trace_schedule
from repro.core.memory import MemoryHierarchy
from repro.core.rmt import RmtSimulator
from repro.experiments.perf import fig6_performance
from repro.isa.soa import TraceArrays
from repro.isa.trace import TraceGenerator
from repro.workloads.profiles import get_profile

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace.json"
_GEN_INSTRUCTIONS = 200_000
_FIG6_SUBSET = ("gzip", "mcf")
# The fig6_batched baseline committed before the windowed kernel /
# SimBatch work landed — the acceptance reference for fig6_simbatch.
_PREV_BATCHED_S = 1.3806


@contextmanager
def _legacy_pipeline():
    """Swap the vectorized hot paths for their per-instruction references
    (generation, cache preload, and scheduling), i.e. the pre-columnar
    pipeline, for the duration of the block."""
    saved = (
        TraceGenerator._generate_chunk,
        MemoryHierarchy.preload_profile,
        LeadingCoreTiming.run,
        RmtSimulator.run,
    )

    def reference_chunk(self, count):
        return TraceArrays.from_instructions(
            self._generate_chunk_reference(count)
        )

    def reference_preload(self, profile):
        self._preload_profile_reference(profile)
        self.l1i.stats.reset()
        self.l1d.stats.reset()
        self.l2.stats.reset()

    def object_leading_run(self, trace, warmup=0, schedule=None):
        if isinstance(trace, TraceArrays):
            trace = trace.to_instructions()
        return saved[2](self, trace, warmup)

    def object_rmt_run(self, trace, warmup=0, schedule=None):
        if isinstance(trace, TraceArrays):
            trace = trace.to_instructions()
        return saved[3](self, trace, warmup)

    TraceGenerator._generate_chunk = reference_chunk
    MemoryHierarchy.preload_profile = reference_preload
    LeadingCoreTiming.run = object_leading_run
    RmtSimulator.run = object_rmt_run
    try:
        yield
    finally:
        (
            TraceGenerator._generate_chunk,
            MemoryHierarchy.preload_profile,
            LeadingCoreTiming.run,
            RmtSimulator.run,
        ) = saved


@pytest.mark.slow
def test_trace_kernel_speedups(benchmark):
    profile = get_profile("gzip")

    # -- trace generation ----------------------------------------------
    # Full 8192-instruction chunks with a trim, exactly like
    # ``generate_arrays`` — prefix stability holds at chunk granularity.
    start = time.perf_counter()
    reference_trace = []
    reference_gen = TraceGenerator(profile, seed=42)
    while len(reference_trace) < _GEN_INSTRUCTIONS:
        reference_trace.extend(reference_gen._generate_chunk_reference(8192))
    reference_trace = reference_trace[:_GEN_INSTRUCTIONS]
    generation_reference_s = time.perf_counter() - start

    def columnar_generation():
        return TraceGenerator(profile, seed=42).generate_arrays(
            _GEN_INSTRUCTIONS
        )

    start = time.perf_counter()
    columnar_trace = benchmark.pedantic(
        columnar_generation, rounds=1, iterations=1
    )
    generation_columnar_s = time.perf_counter() - start
    assert columnar_trace == TraceArrays.from_instructions(reference_trace)
    generation_speedup = generation_reference_s / generation_columnar_s

    # -- windowed issue/retire kernel vs the scalar oracle ---------------
    # Same trace, same memoized schedule, fresh cores: the only variable
    # is the scheduling loop itself (fused `_scan_window` vs per-row
    # `_advance`), measured over the standard bench window.
    kernel_cfg = SystemConfig.for_chip(ChipModel.TWO_D_A)
    kernel_trace = TraceGenerator(profile, seed=42).generate_arrays(
        BENCH_WINDOW.total
    )
    kernel_schedule = build_trace_schedule(kernel_trace, kernel_cfg.leading)

    def _timed_leading_run(force_oracle):
        memory = MemoryHierarchy(
            kernel_cfg.leading, kernel_cfg.nuca, kernel_cfg.chip
        )
        core = LeadingCoreTiming(
            kernel_cfg.leading, memory, BranchPredictor()
        )
        if force_oracle:
            core.kernel_eligible = lambda: False
        start = time.perf_counter()
        result = core.run_arrays(
            kernel_trace, BENCH_WINDOW.warmup, schedule=kernel_schedule
        )
        return time.perf_counter() - start, result

    kernel_s = oracle_s = float("inf")
    for _ in range(3):
        elapsed, kernel_result = _timed_leading_run(force_oracle=False)
        kernel_s = min(kernel_s, elapsed)
        elapsed, oracle_result = _timed_leading_run(force_oracle=True)
        oracle_s = min(oracle_s, elapsed)
    assert kernel_result == oracle_result
    leading_kernel_speedup = oracle_s / kernel_s

    # -- fig6 end-to-end ------------------------------------------------
    # Each stage takes the best of a few fresh-cache rounds: wall-clock
    # comparisons on a shared machine are scheduler-noisy, and the best
    # round is the least contaminated estimate of the pipeline's cost.
    subset = [get_profile(name) for name in _FIG6_SUBSET]

    def _best_fig6(rounds, **kwargs):
        best_s, rows = float("inf"), None
        for _ in range(rounds):
            memo.clear_cache()
            start = time.perf_counter()
            candidate = fig6_performance(
                window=BENCH_WINDOW, benchmarks=subset, jobs=1, **kwargs
            )
            elapsed = time.perf_counter() - start
            if elapsed < best_s:
                best_s, rows = elapsed, candidate
        return best_s, rows

    with _legacy_pipeline():
        fig6_legacy_s, legacy_rows = _best_fig6(rounds=2)
    fig6_columnar_s, columnar_rows = _best_fig6(rounds=3)
    assert [dataclasses.asdict(r) for r in columnar_rows] == [
        dataclasses.asdict(r) for r in legacy_rows
    ]
    fig6_speedup = fig6_legacy_s / fig6_columnar_s

    # -- fig6 batched chunks --------------------------------------------
    # One oversized chunk groups both benchmarks, so the prepare hook
    # primes their traces in a single lockstep batch and the memoized
    # preload plans are shared across all chip models.
    batched_chunksize = 4 * len(subset)
    fig6_batched_s, batched_rows = _best_fig6(
        rounds=3, chunksize=batched_chunksize
    )
    assert [dataclasses.asdict(r) for r in batched_rows] == [
        dataclasses.asdict(r) for r in legacy_rows
    ]
    fig6_batched_speedup = fig6_legacy_s / fig6_batched_s

    # -- fig6 lockstep SimBatch -----------------------------------------
    # Each benchmark's four chip models stepped as one SimBatch, sharing
    # every window's prepare statics; bit-identical to the per-task path.
    fig6_simbatch_s, simbatch_rows = _best_fig6(rounds=3, simbatch=True)
    assert [dataclasses.asdict(r) for r in simbatch_rows] == [
        dataclasses.asdict(r) for r in legacy_rows
    ]
    fig6_simbatch_speedup = fig6_legacy_s / fig6_simbatch_s

    print_table(
        "Columnar trace pipeline speedups",
        ["stage", "reference (s)", "columnar (s)", "speedup"],
        [
            ["generation", round(generation_reference_s, 3),
             round(generation_columnar_s, 3),
             f"{generation_speedup:.1f}x"],
            ["leading kernel", round(oracle_s, 3),
             round(kernel_s, 3), f"{leading_kernel_speedup:.1f}x"],
            ["fig6 end-to-end", round(fig6_legacy_s, 3),
             round(fig6_columnar_s, 3), f"{fig6_speedup:.1f}x"],
            ["fig6 batched chunks", round(fig6_legacy_s, 3),
             round(fig6_batched_s, 3), f"{fig6_batched_speedup:.1f}x"],
            ["fig6 simbatch", round(fig6_legacy_s, 3),
             round(fig6_simbatch_s, 3), f"{fig6_simbatch_speedup:.1f}x"],
        ],
    )

    _RESULT_PATH.write_text(json.dumps({
        "generation": {
            "instructions": _GEN_INSTRUCTIONS,
            "reference_s": round(generation_reference_s, 4),
            "columnar_s": round(generation_columnar_s, 4),
            "speedup": round(generation_speedup, 2),
        },
        "fig6_end_to_end": {
            "benchmarks": list(_FIG6_SUBSET),
            "warmup": BENCH_WINDOW.warmup,
            "measured": BENCH_WINDOW.measured,
            "legacy_s": round(fig6_legacy_s, 4),
            "columnar_s": round(fig6_columnar_s, 4),
            "speedup": round(fig6_speedup, 2),
        },
        "fig6_batched": {
            "benchmarks": list(_FIG6_SUBSET),
            "warmup": BENCH_WINDOW.warmup,
            "measured": BENCH_WINDOW.measured,
            "chunksize": batched_chunksize,
            "batched_s": round(fig6_batched_s, 4),
            "speedup_vs_legacy": round(fig6_batched_speedup, 2),
        },
        "leading_kernel": {
            "instructions": BENCH_WINDOW.total,
            "warmup": BENCH_WINDOW.warmup,
            "oracle_s": round(oracle_s, 4),
            "kernel_s": round(kernel_s, 4),
            "speedup": round(leading_kernel_speedup, 2),
        },
        "fig6_simbatch": {
            "benchmarks": list(_FIG6_SUBSET),
            "warmup": BENCH_WINDOW.warmup,
            "measured": BENCH_WINDOW.measured,
            "simbatch_s": round(fig6_simbatch_s, 4),
            "speedup_vs_legacy": round(fig6_simbatch_speedup, 2),
            "speedup_vs_prev_batched": round(
                _PREV_BATCHED_S / fig6_simbatch_s, 2
            ),
        },
    }, indent=2) + "\n")

    # Acceptance floors for the PR; the measured margins are far larger.
    assert generation_speedup >= 3.0
    assert leading_kernel_speedup >= 1.1
    assert fig6_speedup >= 1.5
    assert fig6_batched_speedup >= 1.5
    # The lockstep batch must beat the previous PR's committed batched
    # time by >= 1.5x.
    assert fig6_simbatch_s <= _PREV_BATCHED_S / 1.5
