"""Figure 7: residency histogram of the checker's DFS frequency levels."""

from conftest import BENCH_WINDOW, print_table

from repro.experiments.frequency import fig7_frequency_histogram


def test_fig7_dfs_histogram(benchmark):
    result = benchmark.pedantic(
        fig7_frequency_histogram, kwargs={"window": BENCH_WINDOW},
        rounds=1, iterations=1,
    )
    print_table(
        "Figure 7: % of intervals at each normalized frequency",
        ["normalized f", "% of intervals"],
        [[f"{level:.1f}", f"{frac:.1%}"] for level, frac in result.fractions.items()],
    )
    print(
        f"mode: {result.mode:.1f} (paper: 0.6);  "
        f"mean: {result.mean:.2f} -> {result.mean_frequency_hz() / 1e9:.2f} GHz "
        f"(paper: ~0.63 -> 1.26 GHz)"
    )
    print(f"leading-core commits stalled by the checker: {result.backpressure_rate:.2%}")

    # Headline: the checker spends most of its time well below peak, with
    # the aggregate distribution peaking near 0.6x.
    assert 0.4 <= result.mode <= 0.7
    assert 0.45 <= result.mean <= 0.75
    # The distribution is unimodal-ish around the mode: the tails are small.
    assert result.fractions.get(1.0, 0.0) < 0.15
    assert result.fractions.get(0.1, 0.0) < 0.15
    # Backpressure on the leader stays negligible (paper: no perf loss).
    assert result.backpressure_rate < 0.10
