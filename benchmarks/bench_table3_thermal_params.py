"""Table 3: thermal model parameters."""

from conftest import print_table

from repro.common.config import ThermalConfig


def build_table():
    cfg = ThermalConfig()
    return [
        ["Bulk Si die1 (um)", cfg.bulk_si_thickness_die1_m * 1e6, 750],
        ["Bulk Si die2 (um)", cfg.bulk_si_thickness_die2_m * 1e6, 20],
        ["Active layer (um)", cfg.active_layer_thickness_m * 1e6, 1],
        ["Cu metal layer (um)", cfg.metal_layer_thickness_m * 1e6, 12],
        ["D2D via layer (um)", cfg.d2d_via_thickness_m * 1e6, 10],
        ["Si resistivity (mK/W)", cfg.si_resistivity_mk_per_w, 0.01],
        ["Cu resistivity (mK/W)", cfg.cu_resistivity_mk_per_w, 0.0833],
        ["D2D resistivity (mK/W)", cfg.d2d_resistivity_mk_per_w, 0.0166],
        ["Grid", f"{cfg.grid_rows}x{cfg.grid_cols}", "50x50"],
        ["Ambient (C)", cfg.ambient_c, 47],
    ]


def test_table3_thermal_params(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print_table("Table 3: thermal model parameters", ["parameter", "ours", "paper"], rows)
    for _name, ours, paper in rows:
        if isinstance(ours, str):
            assert ours == paper
        else:
            assert abs(float(ours) - float(paper)) < 1e-9
