"""Section 2: detection/recovery coverage of the RMT fault model."""

from conftest import print_table

from repro.experiments.coverage import fault_coverage_campaign


def test_s2_fault_coverage(benchmark):
    def run():
        return [
            fault_coverage_campaign(
                benchmark=name, instructions=15_000,
                soft_error_rate=1e-3, timing_error_rate=1e-3, seed=seed,
            )
            for name, seed in (("gzip", 7), ("mcf", 11), ("swim", 13))
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 2: fault-injection campaigns",
        ["campaign", "faults", "detected", "recovered", "ECC fix",
         "ECC detect", "arch. safe"],
        [
            [f"run{i}", r.faults_injected, r.mismatches_detected, r.recoveries,
             r.ecc_corrections, r.ecc_uncorrectable, r.architecturally_safe]
            for i, r in enumerate(results)
        ],
    )
    for r in results:
        # The paper's fault model: single datapath faults are detected and
        # recovered from; the committed store stream is never corrupted.
        assert r.faults_injected > 20
        assert r.mismatches_detected > 0
        assert r.recoveries == r.mismatches_detected
        assert r.architecturally_safe
