"""Overhead budget and chaos smoke test of the fault-tolerant engine.

Two guarantees ride on this file:

* the resilience machinery (attempt loop, outcome objects, policy
  checks) costs the undisturbed happy path no more than 3% over a bare
  pre-resilience sweep loop — measured against an inline reimplementation
  of the old engine's serial path, on tasks of a fixed busy-wait length
  so the comparison is stable across hosts;
* a real CLI invocation survives aggressive chaos (worker kills plus
  injected first-attempt failures) end to end: ``python -m repro fig6
  --chaos worker-kill:0.9,task-fail:0.9 --retries 2`` exits 0 and writes
  a run manifest — once on the default local pool and once on the
  socket backend, where the kills surface as lost workers whose chunks
  requeue onto survivors (or degrade down the chain when none is left);
* a respawn storm (``worker-kill:0.9`` with some respawns chaos-vetoed
  by ``respawn-fail:0.3``) is absorbed by replacement workers —
  ``--respawns 8`` keeps the sweep healthy with zero task failures —
  while the happy-path overhead budget above is unchanged, so the
  supervision layer is free when nothing goes wrong.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest
from conftest import print_table

from repro.experiments import engine
from repro.obs.metrics import get_registry

_TASKS = 150
_TASK_S = 0.002
_OVERHEAD_BUDGET = 0.03
# Absolute slack for scheduler jitter on sub-second measurements.
_EPS_S = 0.025


def _busy(_x):
    # Fixed-duration busy wait: the same work on any host, so the
    # engine-overhead ratio is not hostage to CPU speed.
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < _TASK_S:
        pass
    return _x


def _legacy_serial(fn, items):
    """The pre-resilience engine's serial path: a bare metric-bracketed
    loop with no attempt machinery, outcomes, or checkpoint probes."""
    registry = get_registry()
    results = []
    for item in items:
        mark = registry.begin_task()
        results.append(fn(item))
        registry.end_task(mark)
    return results


@pytest.mark.slow
def test_happy_path_overhead_within_budget(benchmark):
    items = list(range(_TASKS))

    def run_legacy():
        return _legacy_serial(_busy, items)

    def run_engine():
        results, _ = engine.run_sweep(_busy, items, jobs=1, record=False)
        return results

    # Warm both paths once, then take the best of three: overhead is a
    # floor property, so the minimum is the right statistic.
    run_legacy()
    run_engine()
    legacy_s = min(
        _timed(run_legacy) for _ in range(3)
    )
    engine_s = min(
        _timed(run_engine) for _ in range(3)
    )
    benchmark.pedantic(run_engine, rounds=1, iterations=1)

    overhead = engine_s / legacy_s - 1.0
    print_table(
        f"Engine happy-path overhead ({_TASKS} x {_TASK_S * 1e3:.0f}ms tasks)",
        ["path", "wall (s)", "overhead"],
        [
            ["legacy serial loop", f"{legacy_s:.3f}", "—"],
            ["resilient engine", f"{engine_s:.3f}", f"{overhead:+.1%}"],
        ],
    )
    assert engine_s <= legacy_s * (1.0 + _OVERHEAD_BUDGET) + _EPS_S, (
        f"resilience machinery costs {overhead:.1%} on the happy path "
        f"(budget {_OVERHEAD_BUDGET:.0%})"
    )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.mark.slow
def test_cli_survives_chaos(tmp_path):
    """The acceptance smoke target: a chaos-ridden CLI sweep recovers,
    exits 0, and its manifest metrics carry the full sweep."""
    repo = Path(__file__).resolve().parent.parent
    manifest_path = tmp_path / "manifest.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "fig6",
            "--benchmarks", "gzip,mcf", "--window", "1500", "--jobs", "2",
            "--retries", "2", "--chaos", "worker-kill:0.9,task-fail:0.9,seed:1",
            "--metrics", str(manifest_path),
        ],
        cwd=repo,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    manifest = json.loads(manifest_path.read_text())
    sweep = manifest["sweeps"][0]
    print_table(
        "CLI chaos smoke (fig6 under worker kills + injected failures)",
        ["tasks", "failures", "retries", "pool rebuilds"],
        [[sweep["tasks"], sweep["failures"], sweep["retries"],
          sweep["pool_rebuilds"]]],
    )
    assert sweep["tasks"] == 8
    assert sweep["failures"] == 0
    assert sweep["pool_rebuilds"] >= 1   # the kills really fired


@pytest.mark.slow
def test_cli_survives_chaos_on_socket_backend(tmp_path):
    """The same chaos smoke on ``--executor socket``: worker kills show
    up as lost TCP workers; the sweep must still complete with zero
    failures, via requeue onto survivors and — when every worker is
    gone — degradation down the backend chain."""
    repo = Path(__file__).resolve().parent.parent
    manifest_path = tmp_path / "manifest.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "fig6",
            "--benchmarks", "gzip,mcf", "--window", "1500", "--jobs", "2",
            "--executor", "socket", "--retries", "2",
            "--chaos", "worker-kill:0.4,heartbeat-drop:0.3,result-dup:0.5,seed:1",
            "--metrics", str(manifest_path),
        ],
        cwd=repo,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    manifest = json.loads(manifest_path.read_text())
    assert manifest["executor"] == "socket"
    sweep = manifest["sweeps"][0]
    print_table(
        "CLI socket chaos smoke (kills + heartbeat drops + dup frames)",
        ["tasks", "failures", "lost workers", "requeues", "dup results"],
        [[sweep["tasks"], sweep["failures"], sweep["lost_workers"],
          sweep["requeues"], sweep["duplicate_results"]]],
    )
    assert sweep["tasks"] == 8
    assert sweep["failures"] == 0
    assert sweep["executor"] == "socket"
    assert sweep["lost_workers"] >= 1    # a kill or drop really fired


@pytest.mark.slow
def test_cli_survives_respawn_storm_on_socket_backend(tmp_path):
    """Respawn-storm stage: heavy worker kills with a respawn budget
    (and chaos vetoing some respawns) keep the sweep on the socket
    backend through replacement workers; zero task failures either
    way — degradation stays the fallback of last resort."""
    repo = Path(__file__).resolve().parent.parent
    manifest_path = tmp_path / "manifest.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "fig6",
            "--benchmarks", "gzip,mcf", "--window", "1500", "--jobs", "2",
            "--executor", "socket", "--retries", "2", "--respawns", "8",
            "--chaos", "worker-kill:0.9,respawn-fail:0.3,seed:3",
            "--metrics", str(manifest_path),
        ],
        cwd=repo,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    manifest = json.loads(manifest_path.read_text())
    sweep = manifest["sweeps"][0]
    print_table(
        "CLI respawn storm (worker kills + chaos-vetoed respawns)",
        ["tasks", "failures", "lost workers", "respawns",
         "respawn failures", "degraded"],
        [[sweep["tasks"], sweep["failures"], sweep["lost_workers"],
          sweep["respawns"], sweep["respawn_failures"],
          "yes" if sweep["degraded"] else "no"]],
    )
    assert sweep["tasks"] == 8
    assert sweep["failures"] == 0
    assert sweep["lost_workers"] >= 1        # the storm really fired
    assert sweep["respawns"] + sweep["respawn_failures"] >= 1
