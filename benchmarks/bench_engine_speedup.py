"""Serial-vs-parallel wall clock of the experiment engine.

Runs a representative simulation sweep (Figure 6 over a benchmark subset)
once with ``jobs=1`` and once with a worker pool, prints the wall-clock
comparison plus the engine's own per-sweep timing table, and asserts the
two runs are bit-identical — the engine's core contract.  The measured
speedup is informational: on a single-core host the parallel run pays
pool overhead and lands below 1x, which is exactly why it is printed
rather than asserted.
"""

import dataclasses
import os
import time

import pytest
from conftest import BENCH_WINDOW, print_table

from repro.experiments import engine
from repro.experiments.perf import fig6_performance
from repro.workloads.profiles import get_profile

SUBSET = [get_profile(name) for name in ("gzip", "mcf", "mesa", "swim")]


@pytest.mark.slow
def test_engine_speedup(benchmark):
    engine.clear_timings()
    jobs = min(os.cpu_count() or 1, 4)

    start = time.perf_counter()
    serial = fig6_performance(window=BENCH_WINDOW, benchmarks=SUBSET, jobs=1)
    serial_s = time.perf_counter() - start

    def parallel_run():
        return fig6_performance(
            window=BENCH_WINDOW, benchmarks=SUBSET, jobs=jobs
        )

    start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - start

    print_table(
        "Engine speedup: fig6_performance over 4 benchmarks",
        ["mode", "jobs", "wall (s)"],
        [
            ["serial", 1, round(serial_s, 2)],
            ["parallel", jobs, round(parallel_s, 2)],
        ],
    )
    print(f"speedup: {serial_s / parallel_s:.2f}x with {jobs} workers "
          f"({os.cpu_count()} cores visible)")
    print(engine.format_timing_summary())

    # The contract that matters everywhere: identical results.
    assert [dataclasses.asdict(r) for r in serial] == [
        dataclasses.asdict(r) for r in parallel
    ]
