"""Table 8: relative power across technology nodes, derived from Table 7."""

from conftest import print_table

from repro.experiments.technology import table8_power_ratios


def test_table8_tech_power(benchmark):
    rows = benchmark.pedantic(table8_power_ratios, rounds=1, iterations=1)
    print_table(
        "Table 8: relative power of old vs new node",
        ["nodes", "dyn (derived)", "dyn (paper)", "leak (derived)", "leak (paper)"],
        [
            [f"{r.old_nm}/{r.new_nm}", r.dynamic_derived, r.dynamic_published,
             r.leakage_derived, r.leakage_published]
            for r in rows
        ],
    )
    for r in rows:
        assert abs(r.dynamic_derived - r.dynamic_published) <= 0.02
        # The 65/45 leakage row: the paper prints 0.99 where the straight
        # I*L*V derivation gives 1.09 (documented deviation).
        assert abs(r.leakage_derived - r.leakage_published) <= 0.11
