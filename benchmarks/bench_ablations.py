"""Ablations of the checker's design choices (DESIGN.md §6 extensions)."""

from conftest import BENCH_WINDOW, print_table

from repro.experiments.ablations import (
    dfs_sensitivity,
    hard_error_failover,
    rvp_ablation,
    slack_sweep,
    tmr_comparison,
)


def test_ablation_rvp(benchmark):
    result = benchmark.pedantic(
        rvp_ablation, kwargs={"window": BENCH_WINDOW}, rounds=1, iterations=1
    )
    print_table(
        "Ablation: register value prediction (mcf)",
        ["configuration", "checker mean f", "leading IPC"],
        [
            ["with RVP", round(result["with_rvp_mean_frequency"], 2),
             round(result["with_rvp_leading_ipc"], 2)],
            ["without RVP", round(result["without_rvp_mean_frequency"], 2),
             round(result["without_rvp_leading_ipc"], 2)],
        ],
    )
    # RVP is what lets the checker run slow (Section 2.1).
    assert result["without_rvp_mean_frequency"] > result["with_rvp_mean_frequency"]


def test_ablation_slack(benchmark):
    rows = benchmark.pedantic(
        slack_sweep, kwargs={"window": BENCH_WINDOW}, rounds=1, iterations=1
    )
    print_table(
        "Ablation: slack / queue sizing (gzip)",
        ["slack", "leading IPC", "backpressure", "checker mean f"],
        [
            [r["slack"], round(r["leading_ipc"], 3), r["backpressure"],
             round(r["mean_frequency"], 2)]
            for r in rows
        ],
    )
    assert rows[0]["backpressure"] >= rows[-1]["backpressure"]


def test_ablation_dfs_interval(benchmark):
    rows = benchmark.pedantic(
        dfs_sensitivity, kwargs={"window": BENCH_WINDOW}, rounds=1, iterations=1
    )
    print_table(
        "Ablation: DFS interval (gzip)",
        ["interval (cycles)", "checker mean f", "leading IPC", "backpressure"],
        [
            [r["interval_cycles"], round(r["mean_frequency"], 2),
             round(r["leading_ipc"], 3), r["backpressure"]]
            for r in rows
        ],
    )
    assert len(rows) == 3


def test_ablation_hard_error_failover(benchmark):
    result = benchmark.pedantic(
        hard_error_failover, kwargs={"window": BENCH_WINDOW}, rounds=1, iterations=1
    )
    print_table(
        "Hard-error failover: checker serving as leading core (gzip)",
        ["core", "IPC"],
        [
            ["out-of-order leader", round(result["out_of_order_ipc"], 2)],
            ["in-order failover", round(result["failover_in_order_ipc"], 2)],
        ],
    )
    print(f"slowdown: {result['slowdown']:.0%} "
          "(the paper's footnote-1 'performance penalty')")
    assert result["slowdown"] > 0.1


def test_ablation_tmr(benchmark):
    result = benchmark.pedantic(tmr_comparison, rounds=1, iterations=1)
    print_table(
        "RMT + recovery vs TMR + voting (vpr, 1e-3 faults/instr)",
        ["metric", "RMT", "TMR"],
        [
            ["errors handled", result["rmt_recoveries"], result["tmr_masked_errors"]],
            ["architecturally safe", bool(result["rmt_safe"]), bool(result["tmr_safe"])],
            ["redundant executions", result["rmt_execution_overhead"],
             result["tmr_execution_overhead"]],
        ],
    )
    assert result["rmt_safe"] and result["tmr_safe"]
