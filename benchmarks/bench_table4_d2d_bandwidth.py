"""Table 4: die-to-die interconnect bandwidth requirements."""

from conftest import print_table

from repro.experiments.interconnect import table4_bandwidth

PAPER = {
    "loads": (128, "lsq"),
    "branch_outcome": (1, "bpred"),
    "stores": (128, "lsq"),
    "register_values": (768, "regfile"),
    "l2_transfer": (384, "l2_ctl"),
}


def test_table4_d2d_bandwidth(benchmark):
    rows = benchmark.pedantic(table4_bandwidth, rounds=1, iterations=1)
    print_table(
        "Table 4: D2D bandwidth requirements",
        ["data", "width (bits)", "via placement"],
        [[r.data, r.width_bits, r.placement] for r in rows],
    )
    total = sum(r.width_bits for r in rows)
    print(f"total vias: {total} (paper: 1409; 1025 inter-core + 384 L2)")
    for row in rows:
        width, placement = PAPER[row.data]
        assert row.width_bits == width
        assert row.placement == placement
    assert total == 1409
