"""Section 4: the heterogeneous (90 nm) checker die."""

from conftest import BENCH_SUBSET, BENCH_WINDOW, print_table

from repro.experiments.hetero import section4_heterogeneous


def test_s4_heterogeneous(benchmark):
    result = benchmark.pedantic(
        section4_heterogeneous,
        kwargs={"window": BENCH_WINDOW, "benchmarks": BENCH_SUBSET},
        rounds=1, iterations=1,
    )
    rows = [
        ["checker power (W)", f"{result.checker_power_65nm_w:.1f} -> {result.checker_power_90nm_w:.1f}",
         "14.5 -> 23.7"],
        ["upper-die cache (banks)", f"{result.upper_cache_banks_65nm} -> {result.upper_cache_banks_90nm}",
         "9 -> 5"],
        ["upper-die cache power (W)", f"{result.upper_cache_power_65nm_w:.1f} -> {result.upper_cache_power_90nm_w:.1f}",
         "3.5 -> 1.2"],
        ["checker-die power delta (W)", f"{result.checker_die_delta_w:+.1f}", "+6.9"],
        ["90nm checker area (mm2)", f"{result.checker_area_90nm_mm2:.1f}", "~9.6 (ideal logic scaling)"],
        ["peak temp: homo vs hetero (C)",
         f"{result.peak_temp_homogeneous_c:.1f} -> {result.peak_temp_hetero_c:.1f}",
         "drop of up to 4"],
        ["checker block temp (C)",
         f"{result.checker_temp_homogeneous_c:.1f} -> {result.checker_temp_hetero_c:.1f}", "-"],
        ["90nm peak frequency", f"{result.peak_frequency_ratio * 2:.1f} GHz", "1.4 GHz"],
        ["checker's mean required f", f"{result.mean_required_frequency_ghz:.2f} GHz", "1.26 GHz"],
        ["leading-core slowdown", f"{result.leading_slowdown:.1%}", "~3%"],
        ["bank access (cycles)",
         f"{result.bank_access_cycles_65nm} -> {result.bank_access_cycles_90nm}", "+1 cycle"],
        ["timing error rate (per instr)",
         f"{result.timing_error_rate_65nm:.2e} -> {result.timing_error_rate_90nm:.2e}",
         "non-trivial slack remains (tail risk sits at the 1.4 GHz cap)"],
        ["uncorrectable SER ratio (90/65)", f"{result.soft_error_rate_ratio:.2f}", "< 1"],
        ["closing trade: temp increase vs 2d-a",
         f"{result.temp_increase_homo_c:+.1f} C (homo) vs {result.temp_increase_hetero_c:+.1f} C (hetero)",
         "+7 C vs +3 C"],
        ["closing trade: constrained perf loss",
         f"{result.constraint_loss_homo:.1%} (homo) vs {result.constraint_loss_hetero:.1%} (hetero)",
         "8% vs 4%"],
    ]
    print_table("Section 4: heterogeneous checker die", ["metric", "ours", "paper"], rows)

    assert abs(result.checker_power_90nm_w - 23.7) < 1.5
    assert result.upper_cache_banks_90nm == 5
    assert 5.0 < result.checker_die_delta_w < 9.0
    assert result.peak_frequency_ratio == 0.7
    assert 1.0 < result.mean_required_frequency_ghz < 1.4
    assert abs(result.leading_slowdown) < 0.08
    assert result.bank_access_cycles_90nm == result.bank_access_cycles_65nm + 1
    assert result.soft_error_rate_ratio < 1.0
    # The hetero checker block runs no hotter than the homogeneous one
    # despite dissipating ~60% more power (density reduction at work).
    assert (
        result.checker_temp_hetero_c
        <= result.checker_temp_homogeneous_c + 0.5
    )
    # The Section 6 closing trade: the hetero die costs less, on both axes.
    assert result.temp_increase_hetero_c <= result.temp_increase_homo_c + 0.5
    assert result.constraint_loss_hetero <= result.constraint_loss_homo + 0.005
