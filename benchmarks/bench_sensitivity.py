"""Robustness of the thermal deltas to modelling parameters."""

from conftest import print_table

from repro.experiments.sensitivity import (
    grid_resolution_sweep,
    sink_resistance_sweep,
)


def test_sink_resistance_sensitivity(benchmark):
    rows = benchmark.pedantic(sink_resistance_sweep, rounds=1, iterations=1)
    print_table(
        "Sensitivity: convective sink resistance (the calibrated knob)",
        ["sink r (K*mm2/W)", "2d-a peak (C)", "3d delta 7W", "3d delta 15W"],
        [
            [r.value, round(r.baseline_2da_c, 1), f"{r.delta_7w_c:+.1f}",
             f"{r.delta_15w_c:+.1f}"]
            for r in rows
        ],
    )
    baselines = [r.baseline_2da_c for r in rows]
    deltas7 = [r.delta_7w_c for r in rows]
    # Over an 8x range of sink resistance the absolute level moves by
    # several degrees while the headline delta moves by under 2 degrees
    # (conduction-dominated) — the claim survives calibration.
    assert max(baselines) - min(baselines) > 2.0
    assert max(deltas7) - min(deltas7) < 2.5
    for r in rows:
        assert 2.0 < r.delta_7w_c < 8.0
        assert r.delta_15w_c > r.delta_7w_c


def test_grid_resolution_convergence(benchmark):
    rows = benchmark.pedantic(grid_resolution_sweep, rounds=1, iterations=1)
    print_table(
        "Sensitivity: grid resolution (Table 3 uses 50x50)",
        ["grid", "2d-a peak (C)", "3d delta 7W", "3d delta 15W"],
        [
            [f"{int(r.value)}x{int(r.value)}", round(r.baseline_2da_c, 1),
             f"{r.delta_7w_c:+.1f}", f"{r.delta_15w_c:+.1f}"]
            for r in rows
        ],
    )
    # 50x50 vs 75x75 agree within a fraction of a degree.
    mid, fine = rows[-2], rows[-1]
    assert abs(mid.delta_7w_c - fine.delta_7w_c) < 0.6
    assert abs(mid.baseline_2da_c - fine.baseline_2da_c) < 1.5
